"""X2 (extension): Prime ordering latency vs offered load.

Sweeps the client update rate against the six-replica configuration
and reports confirmation latency — the classic latency/throughput
curve for the replication engine underneath Spire.  The expected shape:
flat latency at SCADA-scale loads (Prime batches preorder and ordering
work, so moderate load increases cost little), rising as the offered
rate approaches the pipeline's capacity.
"""

from repro.api import Simulator

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from conftest import build_cluster  # noqa: E402

from _support import Report, run_once

RATES = [5, 20, 50, 100]        # updates/second
DURATION = 4.0


def measure(rate):
    sim = Simulator(seed=120 + rate)
    cluster = build_cluster(sim, f=1, k=1)
    client = cluster.add_client("load")
    interval = 1.0 / rate
    count = int(DURATION * rate)
    for i in range(count):
        sim.schedule(0.5 + i * interval, client.submit, {"set": (f"k{i}", i)})
    sim.run(until=0.5 + DURATION + 6.0)
    # Confirmation counts and latency both come from the telemetry
    # registry: the Prime client observes every f+1-confirmed update
    # into this histogram, so ``hist.count`` is the confirmed total.
    hist = sim.metrics.get("prime.confirm_latency", component="load")
    if hist is None or hist.count == 0:
        return 0, count, None, None, None
    confirmed = hist.count
    stats = hist.summary()
    return confirmed, count, stats["mean"], stats["p50"], stats["p99"]


def bench_prime_latency_vs_load(benchmark):
    report = Report("X2-prime-load", "Prime: confirmation latency vs "
                    "offered update rate (6 replicas, f=1, k=1)")

    def experiment():
        return {rate: measure(rate) for rate in RATES}

    results = run_once(benchmark, experiment)
    rows = []
    for rate, (confirmed, offered, mean, p50, p99) in results.items():
        rows.append([rate, f"{confirmed}/{offered}",
                     f"{mean*1000:.0f}" if mean else "-",
                     f"{p50*1000:.0f}" if p50 else "-",
                     f"{p99*1000:.0f}" if p99 else "-"])
    report.table(["updates/s", "confirmed", "mean (ms)", "p50 (ms)",
                  "p99 (ms)"], rows)
    report.line("SCADA-scale loads (a poll cycle across 17 PLCs is <50 "
                "updates/s) sit on the flat part of the curve; Prime's "
                "batched preordering keeps latency near one ordering "
                "round.")
    report.save_and_print()
    for rate, (confirmed, offered, mean, _, _) in results.items():
        assert confirmed == offered, f"loss at {rate}/s"
        assert mean < 0.5, f"latency blow-up at {rate}/s"
