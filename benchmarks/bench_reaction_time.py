"""E9 (Section V, last paragraph): end-to-end reaction time.

The plant engineers' measurement device periodically flipped a breaker
and used sensors to detect when each system's HMI screen reflected the
change.  Both systems monitor the *same physical breaker* (two RTU
interfaces on the same switchyard); the device acts on the shared
physical topology.

Expected shape (and the paper's result): Spire meets the plant timing
requirements and reflects changes *faster* than the commercial system —
Spire's proxy polls fast and pushes event-driven feeds through Prime,
while the commercial system is bound to its slow scan/refresh cycle.
Absolute numbers are parameter choices (documented below), the ordering
is the architecture.
"""

from repro.api import GridSpec, MeasurementDevice, Simulator, build_spire
from repro.net import Host, Lan
from repro.plc import PlcDevice
from repro.redteam.commercial import CommercialHmi, CommercialScadaServer

from _support import Report, run_once

# Commercial scan-class parameters: a 1 s PLC scan and 1 s HMI refresh
# (typical SCADA scan cycle); Spire polls at 250 ms and pushes feeds
# event-driven.
COMMERCIAL_POLL = 1.0
COMMERCIAL_PUSH = 1.0
SPIRE_POLL = 0.25
PLANT_REQUIREMENT_S = 2.0        # the timing requirement used as pass bar
FLIPS = 12


def bench_reaction_time_spire_vs_commercial(benchmark):
    report = Report("E9-reaction-time",
                    "End-to-end reaction time: breaker flip -> HMI update")

    def experiment():
        sim = Simulator(seed=111)
        system = build_spire(sim, GridSpec.single_plant(
            n_distribution_plcs=1, n_generation_plcs=0, n_hmis=1,
            poll_interval=SPIRE_POLL).spire_config())
        shared_topology = system.physical_plc.topology

        # The commercial system watches the same physical breakers via
        # its own RTU interface on its own network.
        lan = Lan(sim, "commercial-ops", "10.20.0.0/24")
        plc_host = Host(sim, "c-plc")
        server_host = Host(sim, "c-server")
        hmi_host = Host(sim, "c-hmi")
        for host in (plc_host, server_host, hmi_host):
            lan.connect(host)
        PlcDevice(sim, "c-plc", plc_host, shared_topology, physical=True)
        server = CommercialScadaServer(
            sim, "c-server", server_host, lan.ip_of(plc_host),
            lan.ip_of(hmi_host), primary=True,
            poll_interval=COMMERCIAL_POLL, push_interval=COMMERCIAL_PUSH)
        server.set_coil_names(shared_topology.breaker_names())
        commercial_hmi = CommercialHmi(sim, "c-hmi", hmi_host,
                                       lan.ip_of(server_host))
        sim.run(until=5.0)

        spire_hmi = system.hmis[0]
        device = MeasurementDevice(
            sim, shared_topology, "B57",
            sensors={
                "spire": lambda: spire_hmi.breaker_state("plc-physical",
                                                         "B57"),
                "commercial": lambda: commercial_hmi.breaker_state("B57"),
            },
            period=4.0)
        sim.run(until=5.0 + FLIPS * 4.0 + 2.0)
        return device, sim.metrics

    device, metrics = run_once(benchmark, experiment)
    # The device records each detection into the telemetry registry
    # (histogram "measure.reaction_latency", one component per system);
    # the report reads from there.
    summary = {
        name: metrics.get("measure.reaction_latency", component=name).summary()
        for name in ("spire", "commercial")
    }
    assert summary == device.summary()   # registry and device agree
    rows = []
    for system_name in ("spire", "commercial"):
        stats = summary[system_name]
        rows.append([system_name, stats["samples"],
                     f"{stats['mean']*1000:.0f}",
                     f"{stats['p50']*1000:.0f}",
                     f"{stats['min']*1000:.0f}",
                     f"{stats['max']*1000:.0f}",
                     "yes" if stats["max"] <= PLANT_REQUIREMENT_S else "NO"])
    report.table(
        ["system", "samples", "mean (ms)", "p50 (ms)", "min (ms)",
         "max (ms)", f"meets {PLANT_REQUIREMENT_S:.0f}s requirement"],
        rows)
    speedup = summary["commercial"]["mean"] / summary["spire"]["mean"]
    report.line(f"Spire is {speedup:.1f}x faster end-to-end.")
    report.line("Paper: 'Spire successfully met the timing requirements of "
                "the plant engineers, and was even able to reflect changes "
                "more quickly than the commercial system.'")
    report.line(f"(parameters: commercial scan {COMMERCIAL_POLL}s / refresh "
                f"{COMMERCIAL_PUSH}s; Spire poll {SPIRE_POLL}s + "
                "event-driven feeds; Prime ordering adds ~50-100 ms)")
    report.save_and_print()
    assert summary["spire"]["samples"] >= FLIPS - 1
    assert summary["spire"]["max"] <= PLANT_REQUIREMENT_S
    assert summary["spire"]["mean"] < summary["commercial"]["mean"]
