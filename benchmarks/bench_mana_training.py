"""X4 (extension, from Section IV-A's remark): MANA training-duration
sensitivity.

"Ideally, network traffic collection should occur for a longer period
to ensure all traffic characteristics are accounted for, but the
experiment timeline only allowed for one day."

Sweeps the baseline-capture length and measures the false-positive rate
on held-out clean traffic (which includes a traffic mode that occurs
only occasionally — the thing short captures miss) plus detection of a
DoS burst.  Expected shape: detection is easy at every size; the FP
rate is what improves with longer training.

Each capture-length × seed cell is an independent
``repro.mana.sweep.fit_cell`` run, so the grid executes on the
:mod:`repro.parallel` engine (``--jobs``); results merge in cell order
and are identical at any job count.
"""

import os

from repro.parallel import WorkerPool, WorkUnit

from _support import Report, run_once

WINDOW = 5.0
TRAIN_SIZES = [6, 12, 24, 60]     # windows of baseline (30s ... 5min here)
HOLDOUT = 40                      # clean windows evaluated
SEEDS = (1, 2, 3)


def sweep_rows(jobs: int = 1):
    """Run the size × seed grid on the pool; one table row per size."""
    units = [WorkUnit(fn="repro.mana.sweep:fit_cell",
                      kwargs={"model": None, "seed": seed,
                              "train_windows": size,
                              "holdout_windows": HOLDOUT,
                              "window": WINDOW},
                      uid=f"{size}:{seed}")
             for size in TRAIN_SIZES for seed in SEEDS]
    pool = WorkerPool(jobs=jobs, name="mana-training")
    cells = [result.unwrap() for result in pool.run(units)]
    rows = []
    for i, size in enumerate(TRAIN_SIZES):
        chunk = cells[i * len(SEEDS):(i + 1) * len(SEEDS)]
        fps = sum(c["false_positives"] for c in chunk)
        detected = sum(c["dos_detected"] for c in chunk)
        rows.append([size, f"{size * WINDOW:.0f}s",
                     f"{fps}/{len(SEEDS) * HOLDOUT}",
                     f"{fps / (len(SEEDS) * HOLDOUT):.1%}",
                     f"{detected}/{len(SEEDS)}"])
    return rows


def bench_mana_training_duration(benchmark):
    report = Report("X4-mana-training", "MANA: false positives vs "
                    "baseline-capture length")
    jobs = int(os.environ.get("SWEEP_JOBS", "1")) or 1
    rows = run_once(benchmark, lambda: sweep_rows(jobs=jobs))
    report.table(["training windows", "capture length",
                  "false positives (3 runs)", "FP rate", "DoS detected"],
                 rows)
    report.line("Short captures miss the rare maintenance-transfer mode "
                "and flag it later; longer baselines absorb it.  Detection "
                "of real attacks is insensitive to capture length — the "
                "paper's one-day compromise cost false positives, not "
                "misses.")
    report.save_and_print()
    fp_first = int(rows[0][2].split("/")[0])
    fp_last = int(rows[-1][2].split("/")[0])
    assert fp_last <= fp_first
    assert rows[-1][4] == "3/3"
