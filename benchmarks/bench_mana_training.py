"""X4 (extension, from Section IV-A's remark): MANA training-duration
sensitivity.

"Ideally, network traffic collection should occur for a longer period
to ensure all traffic characteristics are accounted for, but the
experiment timeline only allowed for one day."

Sweeps the baseline-capture length and measures the false-positive rate
on held-out clean traffic (which includes a traffic mode that occurs
only occasionally — the thing short captures miss) plus detection of a
DoS burst.  Expected shape: detection is easy at every size; the FP
rate is what improves with longer training.
"""

import numpy as np

from repro.mana import FeatureExtractor, ManaInstance, default_ensemble
from repro.net.tap import Capture, PacketRecord
from repro.api import Simulator

from _support import Report, run_once

WINDOW = 5.0
TRAIN_SIZES = [6, 12, 24, 60]     # windows of baseline (30s ... 5min here)
HOLDOUT = 40                      # clean windows evaluated


def make_record(time, **kw):
    defaults = dict(network="x", ethertype="ipv4",
                    src_mac="02:00:00:00:00:01",
                    dst_mac="02:00:00:00:00:02", size=120,
                    src_ip="10.0.0.1", dst_ip="10.0.0.2", proto="udp",
                    src_port=9999, dst_port=8120, tcp_flags=None,
                    is_arp=False, arp_op=None)
    defaults.update(kw)
    return PacketRecord(time=time, **defaults)


def traffic(duration, rng):
    """Polling baseline plus a RARE mode: a maintenance transfer that
    happens roughly every 90 s (short captures may never see one)."""
    records = []
    t = 0.0
    while t < duration:
        records.append(make_record(t, size=int(118 + rng.normal(0, 2))))
        t += 0.1
    t = rng.uniform(0, 90)
    while t < duration:
        for i in range(20):
            records.append(make_record(t + i * 0.05, size=1400,
                                        dst_port=5003))
        t += rng.uniform(60, 120)
    return sorted(records, key=lambda r: r.time)


def evaluate(train_windows, rng_seed):
    rng = np.random.default_rng(rng_seed)
    total = (train_windows + HOLDOUT) * WINDOW + 40
    records = traffic(total, rng)
    capture = Capture("x")
    capture.records = records
    sim = Simulator(seed=rng_seed)
    instance = ManaInstance(sim, "m", capture, window=WINDOW)
    train_end = train_windows * WINDOW
    instance.train(0.0, train_end)
    clean_alerts = instance.evaluate_range(train_end,
                                           train_end + HOLDOUT * WINDOW)
    # DoS detection at the end.
    dos_start = train_end + HOLDOUT * WINDOW + 5
    for i in range(1500):
        capture.records.append(make_record(dos_start + i * 0.002, size=900,
                                           src_mac="02:00:00:00:00:99"))
    capture.records.sort(key=lambda r: r.time)
    dos_alerts = instance.evaluate_range(dos_start - 2, dos_start + 10)
    return len(clean_alerts), len(dos_alerts) > 0


def bench_mana_training_duration(benchmark):
    report = Report("X4-mana-training", "MANA: false positives vs "
                    "baseline-capture length")

    def experiment():
        rows = []
        for size in TRAIN_SIZES:
            fps = []
            detected = []
            for seed in (1, 2, 3):
                fp, det = evaluate(size, seed)
                fps.append(fp)
                detected.append(det)
            rows.append([size, f"{size * WINDOW:.0f}s",
                         f"{sum(fps)}/{3 * HOLDOUT}",
                         f"{sum(fps) / (3 * HOLDOUT):.1%}",
                         f"{sum(detected)}/3"])
        return rows

    rows = run_once(benchmark, experiment)
    report.table(["training windows", "capture length",
                  "false positives (3 runs)", "FP rate", "DoS detected"],
                 rows)
    report.line("Short captures miss the rare maintenance-transfer mode "
                "and flag it later; longer baselines absorb it.  Detection "
                "of real attacks is insensitive to capture length — the "
                "paper's one-day compromise cost false positives, not "
                "misses.")
    report.save_and_print()
    fp_first = int(rows[0][2].split("/")[0])
    fp_last = int(rows[-1][2].split("/")[0])
    assert fp_last <= fp_first
    assert rows[-1][4] == "3/3"
