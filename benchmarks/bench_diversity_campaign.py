"""X1 (extension): the long-lifetime exploit campaign against the
diversified, proactively recovered fleet.

An attacker with source access (the excursion's end state) develops
memory-corruption exploits over time.  Each exploit fells exactly the
replica whose build it targets; Spire absorbs the loss (f=1); proactive
recovery reissues a fresh variant, invalidating the attacker's work —
the race the paper's architecture is designed to win.
"""

from repro.api import GridSpec, Simulator, build_spire
from repro.diversity import ExploitDeveloper
from repro.net import Host, ubuntu_desktop_2016
from repro.redteam import Attacker
from repro.redteam.scenarios import run_diversity_exploit_campaign

from _support import Report, run_once


def bench_diversity_exploit_campaign(benchmark):
    report = Report("X1-diversity-campaign",
                    "Exploit campaign vs diversity + proactive recovery")

    def experiment():
        sim = Simulator(seed=121)
        system = build_spire(sim, GridSpec.single_plant(
            n_distribution_plcs=0, n_generation_plcs=0, n_hmis=1,
            proactive_recovery_period=30.0,
            proactive_recovery_downtime=0.5).spire_config())
        sim.run(until=4.0)
        staging = Host(sim, "rt-box", os_profile=ubuntu_desktop_2016())
        system.external_lan.connect(staging)
        attacker = Attacker(sim, "redteam", staging)
        developer = ExploitDeveloper(clock=lambda: sim.now)
        scenario = run_diversity_exploit_campaign(system, attacker,
                                                  developer)
        return system, scenario, developer

    system, scenario, developer = run_once(benchmark, experiment)
    rows = [[s.stage,
             "ATTACKER SUCCEEDED" if s.attacker_goal_achieved else "defended",
             s.detail[:70]] for s in scenario.stages]
    report.table(["campaign step", "outcome", "detail"], rows)
    report.line(f"Attacker effort spent: {developer.hours_spent:.0f} "
                "modeled hours; arsenal invalidated by one recovery.")
    report.save_and_print()
    assert scenario.achieved("exploit first replica (matching build)")
    assert not scenario.achieved("reuse exploit on other replicas")
    assert not scenario.achieved("disrupt SCADA with one compromised replica")
    assert not scenario.achieved("exploit survives proactive recovery")


def bench_diversity_campaign_seed_sweep(benchmark):
    """The same campaign replayed across seeds on the parallel sweep
    engine — diversity must win the race under *every* seed, and the
    merged outcome table is identical at any ``--jobs`` count."""
    import os

    from repro.parallel import WorkerPool

    seeds = [121, 122, 123]
    jobs = int(os.environ.get("SWEEP_JOBS", "1")) or 1
    report = Report("X1-diversity-campaign-sweep",
                    "Exploit campaign across seeds (parallel sweep)")

    def experiment():
        pool = WorkerPool(jobs=jobs, name="diversity-sweep")
        results = pool.map(
            "repro.redteam.scenarios:diversity_campaign_cell",
            [{"seed": seed} for seed in seeds])
        return [result.unwrap() for result in results]

    cells = run_once(benchmark, experiment)
    report.table(
        ["seed", "first exploit", "reuse blocked", "SCADA disrupted",
         "survives recovery", "attacker-hours"],
        [[c["seed"], c["first_exploit"], c["reuse_blocked"],
          c["scada_disrupted"], c["survives_recovery"],
          f"{c['attacker_hours']:.0f}"] for c in cells])
    report.line("Every seed: one replica falls to its matching build, "
                "reuse is blocked by diversity, operation continues, and "
                "proactive recovery invalidates the exploit.")
    report.save_and_print()
    assert [c["seed"] for c in cells] == seeds
    for cell in cells:
        assert cell["first_exploit"]
        assert cell["reuse_blocked"]
        assert not cell["scada_disrupted"]
        assert not cell["survives_recovery"]
