"""Shared infrastructure for the benchmark/experiment harness.

Each ``bench_*`` module reproduces one table/figure/result from the
paper (see DESIGN.md section 4 for the index).  Results are printed and
also written to ``benchmarks/results/<exp-id>.txt`` so the full set of
regenerated artifacts survives a quiet pytest run.

Absolute numbers are simulation-scale, not testbed-scale; what must
(and does) match the paper is the *shape*: who wins, what is blocked,
where the qualitative crossovers are.  EXPERIMENTS.md records
paper-vs-measured for every entry.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Report:
    """Accumulates a human-readable experiment report."""

    def __init__(self, exp_id: str, title: str):
        self.exp_id = exp_id
        self.title = title
        self.lines: List[str] = [f"### {exp_id}: {title}", ""]

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    _table_count = 0

    def table(self, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
        rows = [[str(cell) for cell in row] for row in rows]
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.lines.append(fmt.format(*headers))
        self.lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            self.lines.append(fmt.format(*row))
        self.lines.append("")
        self._save_csv(headers, rows)

    def _save_csv(self, headers: Sequence[str], rows) -> None:
        """Also emit each table as CSV so downstream tooling (plots,
        diffing against future runs) has machine-readable artifacts."""
        import csv
        import io

        from repro.util.atomicio import write_text
        self._table_count += 1
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR,
                            f"{self.exp_id}.table{self._table_count}.csv")
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(headers)
        writer.writerows(rows)
        write_text(path, buffer.getvalue())

    def save_and_print(self) -> str:
        from repro.util.atomicio import write_text
        text = "\n".join(self.lines)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.exp_id}.txt")
        write_text(path, text + "\n")
        print("\n" + text)
        return text


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
