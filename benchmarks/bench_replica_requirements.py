"""E11 (Section II): the 3f + 2k + 1 replica-count requirement.

Sweeps (f, k) configurations and verifies, for each, that the system
stays live with f crash-faulty replicas while k are simultaneously
down for proactive recovery — and that losing one replica more halts
progress (liveness needs the 2f+k+1 quorum).  Safety (no divergence)
is checked in every run.
"""

import pytest

from repro.prime import replicas_required
from repro.prime.config import PrimeTiming
from repro.api import Simulator

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from conftest import build_cluster  # noqa: E402

from _support import Report, run_once


def run_configuration(f, k, extra_down):
    """Returns (n, progressed, consistent) with f byzantine-crashed,
    k recovering, and ``extra_down`` additional crashes."""
    sim = Simulator(seed=113 + f * 10 + k + extra_down)
    cluster = build_cluster(sim, f=f, k=k)
    client = cluster.add_client("hmi")
    names = cluster.config.replica_names
    down = 0
    # f intruded replicas (silent).
    for i in range(f):
        cluster.replicas[names[down]].byzantine = "crash"
        down += 1
    # k under proactive recovery (down, then recovering).
    for i in range(k):
        cluster.replicas[names[down]].crash()
        down += 1
    for i in range(extra_down):
        cluster.replicas[names[down]].crash()
        down += 1
    client.submit({"set": ("probe", 1)})
    sim.run(until=8.0)
    healthy = [cluster.apps[name] for name in names[down:]]
    progressed = all(app.store.get("probe") == 1 for app in healthy)
    logs = {tuple(app.oplog) for app in healthy}
    consistent = len(logs) == 1
    return cluster.config.n, progressed, consistent


def bench_replica_requirement_sweep(benchmark):
    report = Report("E11-replicas", "Replica requirement 3f + 2k + 1: "
                    "liveness at the threshold, halt beyond it")

    def experiment():
        rows = []
        for f, k in [(1, 0), (1, 1), (2, 0)]:
            n = replicas_required(f, k)
            _, live_at_threshold, consistent = run_configuration(f, k, 0)
            _, live_beyond, _ = run_configuration(f, k, 1)
            rows.append([f, k, n, 2 * f + k + 1,
                         "yes" if live_at_threshold else "NO",
                         "halted" if not live_beyond else "STILL LIVE",
                         "yes" if consistent else "NO"])
        return rows

    rows = run_once(benchmark, experiment)
    report.table(
        ["f", "k", "n = 3f+2k+1", "quorum", "live with f faulty + k down",
         "one more failure", "consistent"],
        rows)
    report.line("The red-team deployment used (f=1, k=0) -> 4 replicas; "
                "the plant deployment used (f=1, k=1) -> 6 replicas "
                "(proactive recovery with bounded delay).")
    report.save_and_print()
    for row in rows:
        assert row[4] == "yes"
        assert row[5] == "halted"
        assert row[6] == "yes"
