"""E4 (Fig. 4): the HMI power topology for the red-team experiment.

Seven breakers managing the flow of power to four buildings, driven by
the same predetermined breaker cycle the red team was to disrupt.
Regenerates the HMI view: breaker positions and which buildings are
energized, at each cycle step, verified against the physical topology.
"""

from repro.api import BreakerCycler, GridSpec, Simulator, build_spire

from _support import Report, run_once


def bench_fig4_power_topology(benchmark):
    report = Report("E4-fig4", "HMI power topology: 7 breakers, "
                    "4 buildings, predetermined cycle")

    def experiment():
        sim = Simulator(seed=105)
        config = GridSpec.single_site("redteam", n_distribution_plcs=0, n_hmis=1).spire_config()
        system = build_spire(sim, config)
        sim.run(until=3.0)
        hmi = system.hmis[0]
        unit = system.physical_plc
        cycler = BreakerCycler(
            sim, "cycler", unit.topology.breaker_names(),
            lambda breaker, close: hmi.command_breaker(
                unit.device.name, breaker, close),
            interval=1.5)
        snapshots = []

        def snap():
            loads = unit.topology.energized_loads()
            hmi_view = {b: hmi.breaker_state(unit.device.name, b)
                        for b in unit.topology.breaker_names()}
            field = unit.topology.breaker_states()
            snapshots.append((sim.now, dict(field), dict(loads),
                              hmi_view == field))
        sim.every(1.5, snap, start_after=1.4)
        sim.run(until=20.0)
        return unit, snapshots, cycler

    unit, snapshots, cycler = run_once(benchmark, experiment)
    rows = []
    for when, field, loads, hmi_matches in snapshots[:10]:
        closed = ",".join(b for b, c in sorted(field.items()) if c) or "-"
        lit = ",".join(l.split("-")[-1] for l, on in sorted(loads.items())
                       if on) or "none"
        rows.append([f"{when:5.1f}", closed, lit, hmi_matches])
    report.table(["t (s)", "closed breakers", "energized buildings",
                  "HMI == field"], rows)
    agreement = sum(1 for *_, ok in snapshots if ok) / len(snapshots)
    report.line(f"HMI/field agreement across the cycle: {agreement:.0%} "
                f"({len(snapshots)} samples, {cycler.commands_issued} "
                "commands)")
    report.save_and_print()
    assert agreement >= 0.8  # transient sampling races only
    # The cycle actually exercises the topology: buildings go dark and
    # come back.
    energized_counts = {sum(loads.values()) for _, _, loads, _ in snapshots}
    assert len(energized_counts) > 1
