"""X5 (extension): parallel sweep engine — wall-clock scaling with a
determinism witness.

Runs the same 24-cell resilience campaign (4 in-budget scenarios × 6
seeds) serially (``jobs=1``) and fanned out over worker processes
(``jobs=4`` by default), and records:

* wall-clock per job count and the speedup relative to ``jobs=1``;
* the **determinism witness**: the SHA-256 digest of each report —
  every job count must produce the byte-identical report, or the merge
  is broken;
* the pool's ``parallel.*`` telemetry (units completed/retried/failed,
  workers spawned/crashed).

Writes ``BENCH_parallel.json`` at the repository root — the committed
evidence that ``perf_guard.py --parallel-current`` checks future runs
against.  Speedup is hardware-bound: the guard's floor scales with
``min(jobs, cpus)`` (a 4-core runner must show >= 3x; a 1-core box can
only show parity), and the witness must hold everywhere.  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py \
        [--jobs 1,4] [--seeds 6] [--duration 6.0] [--output PATH]

or through pytest (quick mode: fewer cells, determinism-only asserts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.faults import report_digest, run_campaign
from repro.telemetry.metrics import MetricsRegistry

from _support import Report, run_once

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_parallel.json")

#: In-budget scenarios only: every cell must pass, so a scheduling or
#: merge bug shows up as a failed campaign, not just a slow one.
SCENARIOS = ["baseline", "crash-recover", "partition", "flap-degrade"]
DEFAULT_SEEDS = 6
DEFAULT_DURATION = 6.0


def run_parallel_bench(jobs_list=(1, 4), seeds: int = DEFAULT_SEEDS,
                       duration: float = DEFAULT_DURATION,
                       output: str = DEFAULT_OUTPUT) -> dict:
    seed_values = list(range(1, seeds + 1))
    cells = len(SCENARIOS) * len(seed_values)
    runs = {}
    for jobs in jobs_list:
        registry = MetricsRegistry()
        began = time.perf_counter()
        report = run_campaign(scenarios=SCENARIOS, seeds=seed_values,
                              duration=duration, jobs=jobs,
                              metrics=registry)
        wall = time.perf_counter() - began
        runs[jobs] = {
            "wall_s": wall,
            "cells_per_s": cells / wall,
            "digest": report_digest(report),
            "passed": report["passed"],
            "telemetry": {
                metric.name: metric.value
                for metric in registry.find(prefix="parallel")
                if hasattr(metric, "value")
            },
        }

    base_jobs = jobs_list[0]
    digests = {jobs: runs[jobs]["digest"] for jobs in jobs_list}
    results = {
        "cpus": os.cpu_count(),
        "campaign": {"scenarios": SCENARIOS, "seeds": seed_values,
                     "cells": cells, "duration": duration},
        "jobs": {str(jobs): {key: value
                             for key, value in runs[jobs].items()
                             if key != "digest"}
                 for jobs in jobs_list},
        "speedup": {str(jobs): runs[base_jobs]["wall_s"] / runs[jobs]["wall_s"]
                    for jobs in jobs_list if jobs != base_jobs},
        "determinism": {
            "digests": {str(jobs): digest for jobs, digest in digests.items()},
            "match": len(set(digests.values())) == 1,
        },
        "all_passed": all(runs[jobs]["passed"] for jobs in jobs_list),
    }

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report_doc = Report("X5-parallel-sweep",
                        "Process-pool sweep engine: scaling + determinism")
    report_doc.table(
        ["jobs", "wall s", "cells/s", "speedup", "digest"],
        [[jobs, f"{runs[jobs]['wall_s']:.2f}",
          f"{runs[jobs]['cells_per_s']:.2f}",
          f"{runs[base_jobs]['wall_s'] / runs[jobs]['wall_s']:.2f}x",
          runs[jobs]["digest"][:16]] for jobs in jobs_list])
    report_doc.line(
        f"{cells}-cell campaign on a {os.cpu_count()}-core machine; "
        f"reports are {'IDENTICAL' if results['determinism']['match'] else 'DIVERGENT'} "
        "across job counts (ordered deterministic merge).")
    report_doc.line(f"Machine-readable results: "
                    f"{os.path.relpath(output, REPO_ROOT)}")
    report_doc.save_and_print()
    return results


def bench_parallel_sweep(benchmark):
    """Pytest entry point: small grid, determinism is the assertion
    (wall-clock speedup is hardware-bound and guarded by perf_guard
    with a core-aware floor instead)."""
    output = os.path.join(REPO_ROOT, "benchmarks", "results",
                          "BENCH_parallel.quick.json")
    results = run_once(benchmark, lambda: run_parallel_bench(
        jobs_list=(1, 2), seeds=2, duration=5.0, output=output))
    assert results["determinism"]["match"], \
        "parallel merge changed campaign results"
    assert results["all_passed"]
    telemetry = results["jobs"]["2"]["telemetry"]
    assert telemetry["parallel.units_completed"] == results["campaign"]["cells"]
    assert telemetry["parallel.units_failed"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", default="1,4",
                        help="comma-separated job counts; the first is "
                             "the baseline (default: 1,4)")
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS,
                        help=f"seeds per scenario (default {DEFAULT_SEEDS}; "
                             f"{len(SCENARIOS)} scenarios x seeds = cells)")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION,
                        help="simulated seconds per cell")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"result path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    jobs_list = tuple(int(part) for part in args.jobs.split(","))
    results = run_parallel_bench(jobs_list=jobs_list, seeds=args.seeds,
                                 duration=args.duration, output=args.output)
    if not results["determinism"]["match"]:
        print("FATAL: parallel merge changed campaign results",
              file=sys.stderr)
        return 1
    if not results["all_passed"]:
        print("FATAL: campaign failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
