"""E8 (Section V): the power plant test deployment.

Six diverse replicas (f=1, k=1) with proactive recovery, the plant
topology subset (B10-1, B57, B56) on the "real" PLC, ten distribution
and six generation emulated PLCs, and HMIs in three locations.  The
deployed system ran continuously for six days; the simulation runs a
time-scaled version (90 s with recoveries every 10 s ≈ one full
rejuvenation cycle per replica, the property that matters) and checks
continuous correct operation throughout.
"""

from repro.api import GridSpec, Simulator, build_spire

from _support import Report, run_once

RUN_SECONDS = 90.0


def bench_plant_deployment(benchmark):
    report = Report("E8-plant", "Power plant test deployment "
                    "(continuous operation, 6 replicas, 17 PLCs, 3 HMIs)")

    def experiment():
        sim = Simulator(seed=109)
        config = GridSpec.single_plant(proactive_recovery_period=10.0,
                              proactive_recovery_downtime=1.0,
                              poll_interval=0.5, heartbeat_interval=4.0).spire_config()
        system = build_spire(sim, config)
        sim.run(until=5.0)
        scheduler = system.start_proactive_recovery()
        # Plant workload: periodic operator actions on the real subset
        # plus the emulated scenarios.
        hmi_states = {"B57": True}
        actions = {"n": 0}

        def operate():
            actions["n"] += 1
            hmi = system.hmis[actions["n"] % len(system.hmis)]
            hmi_states["B57"] = not hmi_states["B57"]
            hmi.command_breaker("plc-physical", "B57", hmi_states["B57"])

        sim.every(6.0, operate)
        # Continuous-operation probe: every 2 s, all three HMIs must be
        # fresh and consistent with the field.
        probes = {"total": 0, "ok": 0}

        def probe():
            probes["total"] += 1
            topo = system.physical_plc.topology
            field = topo.get_breaker("B57")
            shown = [hmi.breaker_state("plc-physical", "B57")
                     for hmi in system.hmis]
            if all(s == field for s in shown):
                probes["ok"] += 1

        sim.every(2.0, probe, start_after=6.0)
        sim.run(until=RUN_SECONDS)
        return system, scheduler, probes, actions["n"]

    system, scheduler, probes, actions = run_once(benchmark, experiment)
    report.table(
        ["deployment property", "value"],
        [["replicas (3f+2k+1, f=1, k=1)", system.prime_config.n],
         ["PLCs managed", len(system.plcs)],
         ["  physical (plant subset B10-1/B57/B56)",
          sum(1 for u in system.plcs.values() if u.physical)],
         ["  emulated distribution", sum(1 for n in system.plcs if "dist" in n)],
         ["  emulated generation", sum(1 for n in system.plcs if "gen" in n)],
         ["HMI locations", len(system.hmis)],
         ["proactive recoveries completed", scheduler.recoveries_completed],
         ["operator actions executed", actions],
         ["continuous-operation probes OK",
          f"{probes['ok']}/{probes['total']}"],
         ["master views consistent at end",
          system.master_views_consistent()]])
    uptime = probes["ok"] / probes["total"]
    report.line(f"Availability during scaled run: {uptime:.1%} "
                "(transients only during HMI redisplay races).")
    report.line("Paper: 'Spire and MANA were continuously deployed without "
                "interruption or adverse effects on the plant systems for "
                "six days.'")
    report.save_and_print()
    assert uptime >= 0.9
    assert scheduler.recoveries_completed >= 6      # full cycle of 6 replicas
    assert system.master_views_consistent()


def bench_plant_historian_archive(benchmark):
    report = Report("E8b-plant-historian",
                    "Historian archives the deployment's state series")

    def experiment():
        sim = Simulator(seed=110)
        config = GridSpec.single_plant(n_distribution_plcs=1, n_generation_plcs=1,
                              n_hmis=1).spire_config()
        system = build_spire(sim, config)
        sim.run(until=4.0)
        topo = system.physical_plc.topology
        for i in range(4):
            sim.schedule(1.0 + 3.0 * i, topo.set_breaker, "B56", i % 2 == 0)
        sim.run(until=20.0)
        return system

    system = run_once(benchmark, experiment)
    series = system.historian.breaker_series("plc-physical", "B56")
    transitions = sum(1 for (_, a), (_, b) in zip(series, series[1:])
                      if a != b)
    report.table(["historian metric", "value"],
                 [["records archived", len(system.historian.records)],
                  ["B56 series points", len(series)],
                  ["B56 transitions captured", transitions]])
    report.save_and_print()
    assert transitions >= 2
