"""X7 (extension): grid-scale sweep — substation-count scaling with a
determinism witness.

Builds generated towns of 1, 5, and 25 substations (the ISSUE's
single-plant / town / small-city ladder), drives each through the same
deterministic supervisory workload via ``repro.grid.world:_sweep_cell``
on the parallel engine, and records:

* events executed and wall-clock events/s per grid size (how the
  federated deployment scales with substation count);
* confirm-latency quantiles per size (the simulated SCADA system must
  not degrade as the grid grows — latency retention is the guarded
  relative metric);
* the **determinism witness**: the SHA-256 digest of the full result
  set at ``jobs=1`` vs ``jobs=2`` must match, or per-substation
  construction ordering leaked into simulation results.

Writes ``BENCH_grid.json`` at the repository root — the committed
evidence that ``perf_guard.py --grid-current`` checks future runs
against.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_grid_scale.py \
        [--sizes 1,5,25] [--duration 8.0] [--output PATH]

or through pytest (quick mode: sizes 1 and 2, determinism-only asserts).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

from repro.grid import make_town_spec
from repro.parallel import WorkUnit, WorkerPool

from _support import Report, run_once

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_grid.json")

DEFAULT_SIZES = (1, 5, 25)
DEFAULT_DURATION = 8.0
SEED = 7


def _digest(cells) -> str:
    payload = json.dumps(cells, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def _run_sweep(sizes, duration: float, jobs: int):
    units = [WorkUnit(fn="repro.grid.world:_sweep_cell",
                      kwargs={"grid": make_town_spec(
                          size, name=f"bench-town-{size}",
                          seed=0).to_dict(),
                          "seed": SEED, "duration": duration},
                      uid=f"town-{size}")
             for size in sizes]
    pool = WorkerPool(jobs=jobs, name="grid-scale")
    began = time.perf_counter()
    cells = [result.unwrap() for result in pool.run(units)]
    wall = time.perf_counter() - began
    return cells, wall


def run_grid_bench(sizes=DEFAULT_SIZES, duration: float = DEFAULT_DURATION,
                   output: str = DEFAULT_OUTPUT) -> dict:
    # Serial pass: one timed cell per size (events/s undistorted by
    # co-scheduled workers), then the same units through a 2-worker
    # pool as the determinism witness.
    from repro.grid.world import _sweep_cell

    cells_serial, per_size = [], {}
    for size in sizes:
        grid = make_town_spec(size, name=f"bench-town-{size}",
                              seed=0).to_dict()
        began = time.perf_counter()
        cell = _sweep_cell(grid=grid, seed=SEED, duration=duration)
        cell_wall = time.perf_counter() - began
        cells_serial.append(cell)
        per_size[str(size)] = {
            "events": cell["events"],
            "events_per_s": cell["events"] / cell_wall,
            "wall_s": cell_wall,
            "confirm_latency": cell["confirm_latency"],
            "frequency_excursions":
                cell["grid"]["frequency_excursions"],
            "client_commands": cell["grid"]["client_commands"],
        }
    cells_parallel, _ = _run_sweep(sizes, duration, jobs=2)
    digests = {"1": _digest(cells_serial), "2": _digest(cells_parallel)}

    smallest, largest = str(min(sizes)), str(max(sizes))
    p50_small = per_size[smallest]["confirm_latency"]["p50"]
    p50_large = per_size[largest]["confirm_latency"]["p50"]
    results = {
        "cpus": os.cpu_count(),
        "sweep": {"sizes": list(sizes), "duration": duration,
                  "seed": SEED},
        "sizes": per_size,
        # Simulated confirm latency must hold up as the grid grows:
        # 1.0 = the largest grid confirms as fast as the smallest.
        "latency_retention": (p50_small / p50_large
                              if p50_large else None),
        "determinism": {"digests": digests,
                        "match": len(set(digests.values())) == 1},
    }

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report_doc = Report("X7-grid-scale",
                        "Federated grid deployments: substation-count "
                        "scaling + determinism")
    report_doc.table(
        ["substations", "events", "events/s", "confirm p50 (ms)",
         "samples"],
        [[size, per_size[str(size)]["events"],
          f"{per_size[str(size)]['events_per_s']:.0f}",
          f"{(per_size[str(size)]['confirm_latency']['p50'] or 0) * 1e3:.1f}",
          per_size[str(size)]["confirm_latency"]["samples"]]
         for size in sizes])
    report_doc.line(
        f"{duration:.0f} simulated seconds per grid; jobs=1 vs jobs=2 "
        f"result digests are "
        f"{'IDENTICAL' if results['determinism']['match'] else 'DIVERGENT'}; "
        f"confirm-latency retention {min(sizes)}->{max(sizes)} subs: "
        f"{results['latency_retention']:.2f}x.")
    report_doc.line(f"Machine-readable results: "
                    f"{os.path.relpath(output, REPO_ROOT)}")
    report_doc.save_and_print()
    return results


def bench_grid_scale(benchmark):
    """Pytest entry point: two small grids, determinism and sanity are
    the assertions (absolute throughput is hardware-bound and guarded
    by perf_guard instead)."""
    output = os.path.join(REPO_ROOT, "benchmarks", "results",
                          "BENCH_grid.quick.json")
    results = run_once(benchmark, lambda: run_grid_bench(
        sizes=(1, 2), duration=5.0, output=output))
    assert results["determinism"]["match"], \
        "grid sweep results diverged across job counts"
    for size, row in results["sizes"].items():
        assert row["confirm_latency"]["samples"] > 0, \
            f"{size}-substation grid confirmed no commands"
        assert row["client_commands"] >= 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="1,5,25",
                        help="comma-separated substation counts "
                             "(default: 1,5,25)")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION,
                        help="simulated seconds per grid")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"result path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    sizes = tuple(int(part) for part in args.sizes.split(","))
    results = run_grid_bench(sizes=sizes, duration=args.duration,
                             output=args.output)
    if not results["determinism"]["match"]:
        print("FATAL: grid sweep results diverged across job counts",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
