"""A3: Prime's bounded-delay guarantee under a performance attack.

The property that distinguishes Prime (and why Spire uses it): a
malicious leader cannot silently degrade performance.  We measure
update confirmation latency in three conditions:

1. correct leader (baseline);
2. malicious slow leader WITH the suspect-leader mechanism (deployed
   Prime): the leader is rotated out and latency stays bounded by
   roughly the suspect timeout + one view change;
3. the same slow leader with the suspect mechanism disabled (a plain
   leader-based protocol): latency grows to the leader's chosen delay —
   unbounded in principle.
"""

from repro.prime.config import PrimeTiming
from repro.api import Simulator

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from conftest import build_cluster  # noqa: E402

from _support import Report, run_once

ATTACK_DELAY = 4.0      # the slow leader proposes every 4 s
N_UPDATES = 8


def measure(leader_mode: str, suspect_enabled: bool):
    timing = PrimeTiming(suspect_timeout=1.0 if suspect_enabled else 1e9)
    sim = Simulator(seed=116)
    cluster = build_cluster(sim, f=1, k=1, timing=timing)
    leader = cluster.replicas[cluster.config.leader_of(0)]
    if leader_mode != "correct":
        leader.byzantine = leader_mode
        leader.byzantine_delay = ATTACK_DELAY
    client = cluster.add_client("hmi")
    for i in range(N_UPDATES):
        sim.schedule(0.5 + i * 0.8, client.submit, {"set": (f"u{i}", i)})
    sim.run(until=0.5 + N_UPDATES * 0.8 + 12.0)
    latencies = sorted(client.confirm_latency.values())
    completed = len(latencies)
    view_changed = any(rep.view > 0 for rep in cluster.replicas.values())
    if not latencies:
        return completed, None, None, view_changed
    mean = sum(latencies) / len(latencies)
    return completed, mean, latencies[-1], view_changed


def bench_prime_bounded_delay(benchmark):
    report = Report("A3-bounded-delay", "Prime: update latency under a "
                    "malicious (slow) leader")

    def experiment():
        return (measure("correct", True),
                measure("slow-leader", True),
                measure("slow-leader", False))

    baseline, attacked, unprotected = run_once(benchmark, experiment)
    rows = []
    for label, (done, mean, worst, vc) in (
            ("correct leader", baseline),
            ("slow leader + suspect-leader (Prime)", attacked),
            ("slow leader, no suspect mechanism", unprotected)):
        rows.append([label, f"{done}/{N_UPDATES}",
                     f"{mean*1000:.0f}" if mean else "-",
                     f"{worst*1000:.0f}" if worst else "-",
                     "yes" if vc else "no"])
    report.table(["condition", "updates confirmed", "mean latency (ms)",
                  "worst latency (ms)", "leader rotated"], rows)
    report.line("Prime keeps the worst case near suspect_timeout (1 s) + "
                "one view change; without the mechanism the attacker sets "
                "the latency (here the proposal period, 4 s — and in "
                "general arbitrarily slow).")
    report.save_and_print()
    base_worst = baseline[2]
    prime_worst = attacked[2]
    naked_worst = unprotected[2]
    assert baseline[0] == N_UPDATES and attacked[0] == N_UPDATES
    assert base_worst < 0.5
    assert prime_worst < 3.0, "bounded delay violated"
    assert attacked[3] is True      # the slow leader was rotated out
    assert naked_worst is None or naked_worst > prime_worst
