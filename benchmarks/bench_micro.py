"""X5: substrate microbenchmarks (wall-clock performance).

Unlike the experiment reproductions (single-shot, simulated time),
these measure the *simulator's* real performance over multiple rounds:
kernel event dispatch, the UDP delivery path, crypto over canonical
serialization, and Prime end-to-end update cost.  Useful for spotting
performance regressions when extending the codebase.
"""

from repro.crypto import KeyStore, mac_payload, sign_payload, verify_signature
from repro.net import Host, Lan
from repro.api import Simulator


def bench_kernel_event_dispatch(benchmark):
    """Schedule+execute 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events == 10_000


def bench_udp_delivery_path(benchmark):
    """1000 UDP datagrams host->switch->host, full stack."""

    def run():
        sim = Simulator(seed=1)
        lan = Lan(sim, "lan", "10.0.0.0/24")
        a, b = Host(sim, "a"), Host(sim, "b")
        lan.connect(a)
        lan.connect(b)
        got = []
        b.udp_bind(9000, lambda *args: got.append(None))
        for i in range(1000):
            sim.schedule(i * 0.001, a.udp_send, lan.ip_of(b), 9000,
                         "payload", 1)
        sim.run(until=2.0)
        return len(got)

    delivered = benchmark(run)
    assert delivered == 1000


def bench_sign_verify_roundtrip(benchmark):
    """HMAC signature over a Prime-sized message, sign + verify."""
    ks = KeyStore()
    ks.create_signing("replica1")
    ring = ks.ring_for(signing_principals=["replica1"])
    payload = {"sender": "replica1", "body_type": "PrePrepare",
               "matrix": {f"replica{i}": {"replica1#0": 42}
                          for i in range(6)}}

    def run():
        sig = sign_payload(ring, "replica1", payload)
        return verify_signature(ring, sig, payload)

    assert benchmark(run) is True


def bench_prime_update_wallclock(benchmark):
    """Wall-clock cost of ordering+executing 20 updates on 6 replicas
    (the full protocol pipeline including the overlay)."""
    import sys, os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                    "tests"))
    from conftest import build_cluster

    def run():
        sim = Simulator(seed=5)
        cluster = build_cluster(sim, f=1, k=1)
        client = cluster.add_client("bench")
        for i in range(20):
            sim.schedule(0.1 + i * 0.05, client.submit, {"set": (f"k{i}", i)})
        sim.run(until=3.0)
        return sum(1 for app in cluster.apps.values()
                   if len(app.oplog) == 20)

    agreed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert agreed == 6
