"""X7 (extension): sharded grid execution — one world, many processes,
identical results.

Runs the ``spire-sim grid`` live arc (steady supervisory workload, a
mid-run substation trip, restoration) on federated worlds of increasing
size, once per shard count, and records:

* wall-clock per shard count and the speedup relative to ``shards=1``
  (the same kernel decomposition on one inline lane — so the measured
  speedup isolates process fan-out, not decomposition overhead);
* the **determinism witness**: the SHA-256 digest of the grid section
  *and* the combined per-kernel event digest — every shard count must
  produce byte-identical values, or the conservative barrier is broken;
* the coordinator's ``shard.*`` telemetry (barrier rounds, cross-shard
  envelopes, fraction samples, wall-clock idle wait).

Writes ``BENCH_shard.json`` at the repository root — the committed
evidence that ``perf_guard.py --shard-current`` checks future runs
against.  Speedup is hardware-bound: the guard enforces the >1.0x
floor only on multi-core runners and for the largest (25-substation)
world, where per-round work dwarfs barrier cost; the witness must hold
everywhere.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_scale.py \
        [--quick] [--shards 1,2] [--duration 6.0] [--output PATH]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

from repro.grid.spec import make_town_spec
from repro.shard import ShardedGridWorld

from _support import Report, run_once

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_shard.json")

DEFAULT_SIZES = (5, 25)
DEFAULT_SHARDS = (1, 2)
DEFAULT_DURATION = 6.0
DEFAULT_SEED = 3


def _drive(size: int, shards: int, duration: float, seed: int) -> dict:
    """One measured run of the cmd_grid live arc."""
    spec = make_town_spec(size, seed=seed)
    world = ShardedGridWorld(spec, shards=shards, seed=seed)
    try:
        began = time.perf_counter()
        world.start_workload(max(int((duration - 2.0) / 0.6), 4),
                             start=0.3, interval=0.6)
        world.run(until=duration / 3.0)
        world.trip_substation("sub-01")
        world.run(until=2.0 * duration / 3.0)
        world.restore_substation("sub-01")
        world.run(until=duration)
        section = world.grid_section()
        wall = time.perf_counter() - began
        witness = hashlib.sha256(
            json.dumps(section, sort_keys=True).encode())
        witness.update(world.event_digest().encode())
        telemetry = {
            metric.name: metric.value
            for metric in world.metrics.find(prefix="shard")
            if hasattr(metric, "value")}
        return {
            "wall_s": wall,
            "events": section["events_executed"],
            "events_per_s": section["events_executed"] / wall,
            "digest": witness.hexdigest(),
            "lanes": len(world._lanes),
            "telemetry": telemetry,
        }
    finally:
        world.close()


def run_shard_bench(sizes=DEFAULT_SIZES, shard_counts=DEFAULT_SHARDS,
                    duration: float = DEFAULT_DURATION,
                    seed: int = DEFAULT_SEED,
                    output: str = DEFAULT_OUTPUT) -> dict:
    base = shard_counts[0]
    size_rows = {}
    all_match = True
    for size in sizes:
        runs = {shards: _drive(size, shards, duration, seed)
                for shards in shard_counts}
        digests = {shards: runs[shards]["digest"] for shards in shard_counts}
        match = len(set(digests.values())) == 1
        all_match = all_match and match
        size_rows[str(size)] = {
            "shards": {str(shards): {key: value
                                     for key, value in runs[shards].items()
                                     if key != "digest"}
                       for shards in shard_counts},
            "speedup": {str(shards):
                        runs[base]["wall_s"] / runs[shards]["wall_s"]
                        for shards in shard_counts if shards != base},
            "digests": {str(shards): digest
                        for shards, digest in digests.items()},
            "digest_match": match,
        }

    results = {
        "cpus": os.cpu_count(),
        "config": {"sizes": list(sizes), "shards": list(shard_counts),
                   "duration": duration, "seed": seed},
        "lookahead": make_town_spec(sizes[0], seed=seed).resolved_regions()[0].latency,
        "sizes": size_rows,
        "determinism": {"match": all_match},
    }

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report_doc = Report("X7-shard-scale",
                        "Sharded grid execution: scaling + determinism")
    rows = []
    for size in sizes:
        row = size_rows[str(size)]
        for shards in shard_counts:
            run = row["shards"][str(shards)]
            speedup = (row["speedup"].get(str(shards), 1.0))
            rows.append([size, shards, f"{run['wall_s']:.2f}",
                         f"{run['events_per_s']:.0f}",
                         f"{speedup:.2f}x",
                         "yes" if row["digest_match"] else "NO"])
    report_doc.table(
        ["substations", "shards", "wall s", "events/s", "speedup",
         "identical"], rows)
    report_doc.line(
        f"Live grid arc on a {os.cpu_count()}-core machine; sections and "
        f"event digests are "
        f"{'IDENTICAL' if all_match else 'DIVERGENT'} across shard counts "
        "(conservative lookahead barrier).")
    report_doc.line(f"Machine-readable results: "
                    f"{os.path.relpath(output, REPO_ROOT)}")
    report_doc.save_and_print()
    return results


def bench_shard_scale(benchmark):
    """Pytest entry point: small world, determinism is the assertion
    (wall-clock speedup is hardware-bound and guarded by perf_guard
    with a core-aware skip on single-core boxes)."""
    output = os.path.join(REPO_ROOT, "benchmarks", "results",
                          "BENCH_shard.quick.json")
    results = run_once(benchmark, lambda: run_shard_bench(
        sizes=(5,), shard_counts=(1, 2), duration=4.0, output=output))
    assert results["determinism"]["match"], \
        "sharding changed grid results"
    row = results["sizes"]["5"]
    assert row["shards"]["2"]["lanes"] == 3
    assert row["shards"]["2"]["telemetry"]["shard.cross_envelopes"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small world, short run (CI smoke; writes "
                             "to benchmarks/results/)")
    parser.add_argument("--shards", default=None,
                        help="comma-separated shard counts; the first is "
                             "the baseline (default: 1,2)")
    parser.add_argument("--duration", type=float, default=None,
                        help=f"simulated seconds (default "
                             f"{DEFAULT_DURATION}; quick: 4.0)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--output", default=None,
                        help=f"result path (default: {DEFAULT_OUTPUT}; "
                             "quick: benchmarks/results/)")
    args = parser.parse_args(argv)
    sizes = (5,) if args.quick else DEFAULT_SIZES
    duration = args.duration if args.duration is not None \
        else (4.0 if args.quick else DEFAULT_DURATION)
    output = args.output or (
        os.path.join(REPO_ROOT, "benchmarks", "results",
                     "BENCH_shard.quick.json") if args.quick
        else DEFAULT_OUTPUT)
    shard_counts = tuple(int(part) for part in args.shards.split(",")) \
        if args.shards else DEFAULT_SHARDS
    results = run_shard_bench(sizes=sizes, shard_counts=shard_counts,
                              duration=duration, seed=args.seed,
                              output=output)
    if not results["determinism"]["match"]:
        print("FATAL: sharding changed grid results", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
