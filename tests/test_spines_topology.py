"""Spines overlay topology: sparse graphs, route recomputation, and
resilience to daemon failures on constrained topologies."""


from repro.crypto import KeyStore
from repro.net import Host, Lan, locked_down_firewall
from repro.api import Simulator
from repro.spines import IT_FLOOD, RELIABLE, SpinesNetwork


def build(sim, n, intrusion_tolerant=True, port=8100):
    lan = Lan(sim, "net", "10.0.0.0/24", ports=n + 2)
    ks = KeyStore(sim.rng.child("keys"))
    overlay = SpinesNetwork(sim, "t", lan, ks, port=port,
                            intrusion_tolerant=intrusion_tolerant)
    hosts = []
    for i in range(n):
        host = Host(sim, f"h{i}", firewall=locked_down_firewall())
        lan.connect(host)
        overlay.add_daemon(host)
        hosts.append(host)
    return lan, overlay, hosts


def test_sparse_topology_connects_everything():
    sim = Simulator(seed=81)
    lan, overlay, hosts = build(sim, 12)
    overlay.connect_sparse(degree=4)
    names = sorted(overlay.daemons)
    # Every daemon has at least 2 neighbors (ring guarantees it).
    for daemon in overlay.daemons.values():
        assert len(daemon.neighbors) >= 2
    # Multicast reaches every daemon.
    received = []
    for name in names:
        overlay.daemons[name].create_session(
            50, lambda src, p, n=name: received.append(n))
    src = overlay.daemons[names[0]].create_session(51, lambda s, p: None)
    src.send(("*", 50), "flood", service=IT_FLOOD)
    sim.run(until=2.0)
    assert sorted(received) == names


def test_sparse_topology_cheaper_than_mesh():
    sim = Simulator(seed=82)
    lan_m, mesh, _ = build(sim, 12, port=8100)
    mesh.connect_full_mesh()
    sim2 = Simulator(seed=82)
    lan_s, sparse, _ = build(sim2, 12, port=8100)
    sparse.connect_sparse(degree=4)
    assert len(sparse.edges) < len(mesh.edges) / 2


def test_sparse_small_membership_falls_back_to_mesh():
    sim = Simulator(seed=83)
    lan, overlay, hosts = build(sim, 4)
    overlay.connect_sparse(degree=4)
    # 4 daemons, degree 4 -> full mesh (6 edges).
    assert len(overlay.edges) == 6


def test_unicast_on_sparse_topology():
    sim = Simulator(seed=84)
    lan, overlay, hosts = build(sim, 10)
    overlay.connect_sparse(degree=4)
    names = sorted(overlay.daemons)
    received = []
    overlay.daemons[names[7]].create_session(50,
                                             lambda s, p: received.append(p))
    src = overlay.daemons[names[1]].create_session(51, lambda s, p: None)
    src.send((names[7], 50), "direct", service=RELIABLE)
    sim.run(until=2.0)
    assert received == ["direct"]
    assert src.stats.acked == 1


def test_flood_survives_daemon_failures_on_sparse_graph():
    """Killing a daemon cannot partition correct members of the
    ring+chord overlay (for a single failure)."""
    sim = Simulator(seed=85)
    lan, overlay, hosts = build(sim, 10)
    overlay.connect_sparse(degree=4)
    names = sorted(overlay.daemons)
    overlay.stop_daemon(names[3])
    received = []
    for name in names:
        if name != names[3]:
            overlay.daemons[name].create_session(
                50, lambda src, p, n=name: received.append(n))
    src = overlay.daemons[names[2]].create_session(51, lambda s, p: None)
    src.send(("*", 50), "post-failure", service=IT_FLOOD)
    sim.run(until=2.0)
    assert sorted(received) == [n for n in names if n != names[3]]


def test_routed_mode_recomputes_after_failure():
    """Line topology a-b-c-d: when c dies, a->d becomes unreachable;
    when it returns, routing works again."""
    sim = Simulator(seed=86)
    lan, overlay, hosts = build(sim, 4, intrusion_tolerant=False)
    a, b, c, d = sorted(overlay.daemons)
    for x, y in ((a, b), (b, c), (c, d)):
        overlay.add_edge(x, y)
    received = []
    overlay.daemons[d].create_session(50, lambda s, p: received.append(p))
    src = overlay.daemons[a].create_session(51, lambda s, p: None)
    src.send((d, 50), "one", service=RELIABLE)
    sim.run(until=2.0)
    assert received == ["one"]
    overlay.stop_daemon(c)
    src.send((d, 50), "two", service=RELIABLE)
    sim.run(until=4.0)
    assert received == ["one"]   # no path
    assert src.stats.dropped_no_route >= 1 or src.stats.retransmissions > 0
    overlay.start_daemon(c)
    src.send((d, 50), "three", service=RELIABLE)
    sim.run(until=6.0)
    assert "three" in received


def test_redundant_paths_used_in_routed_mode():
    """Diamond topology: a-b-d and a-c-d; losing b still leaves a path."""
    sim = Simulator(seed=87)
    lan, overlay, hosts = build(sim, 4, intrusion_tolerant=False)
    a, b, c, d = sorted(overlay.daemons)
    for x, y in ((a, b), (a, c), (b, d), (c, d)):
        overlay.add_edge(x, y)
    received = []
    overlay.daemons[d].create_session(50, lambda s, p: received.append(p))
    src = overlay.daemons[a].create_session(51, lambda s, p: None)
    overlay.stop_daemon(b)
    src.send((d, 50), "via-c", service=RELIABLE)
    sim.run(until=3.0)
    assert received == ["via-c"]
