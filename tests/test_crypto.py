"""Tests for the crypto layer: key rings, MACs, signatures, sealing."""

import dataclasses

import pytest

from repro.crypto import (
    KeyError_, KeyRing, KeyStore, SealError, UnserializableError,
    canonical_bytes, digest, forge_signature, mac_payload, seal,
    sign_payload, verify_mac, verify_signature,
)


@pytest.fixture
def keystore():
    ks = KeyStore()
    ks.create_symmetric("spines.internal")
    ks.create_symmetric("spines.external")
    ks.create_signing("replica1")
    ks.create_signing("replica2")
    return ks


# ---------------------------------------------------------------------------
# canonical serialization
# ---------------------------------------------------------------------------
def test_canonical_bytes_is_deterministic():
    value = {"b": [1, 2, (3, "x")], "a": {"k": b"bytes", "f": 1.5}}
    assert canonical_bytes(value) == canonical_bytes(value)


def test_canonical_bytes_dict_order_independent():
    assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})


def test_canonical_bytes_type_tagged():
    assert canonical_bytes(1) != canonical_bytes("1")
    assert canonical_bytes(True) != canonical_bytes(1)
    assert canonical_bytes(None) != canonical_bytes(0)
    assert canonical_bytes(1.0) != canonical_bytes(1)


def test_canonical_bytes_dataclass():
    @dataclasses.dataclass
    class Point:
        x: int
        y: int

    assert canonical_bytes(Point(1, 2)) == canonical_bytes(Point(1, 2))
    assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point(2, 1))


def test_canonical_bytes_rejects_unknown_types():
    with pytest.raises(UnserializableError):
        canonical_bytes(object())


def test_digest_distinguishes_payloads():
    assert digest({"seq": 1}) != digest({"seq": 2})
    assert len(digest("x")) == 32


# ---------------------------------------------------------------------------
# key store / rings
# ---------------------------------------------------------------------------
def test_keystore_rejects_duplicates(keystore):
    with pytest.raises(KeyError_):
        keystore.create_symmetric("spines.internal")
    with pytest.raises(KeyError_):
        keystore.create_signing("replica1")


def test_keystore_unknown_key(keystore):
    with pytest.raises(KeyError_):
        keystore.symmetric("nope")
    with pytest.raises(KeyError_):
        keystore.signing("nobody")


def test_ring_provisioning(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"],
                             signing_principals=["replica1"])
    assert ring.has_symmetric("spines.internal")
    assert not ring.has_symmetric("spines.external")
    assert ring.can_sign_as("replica1")
    assert not ring.can_sign_as("replica2")


def test_ring_clone_models_compromise(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    loot = ring.clone()
    assert loot.has_symmetric("spines.internal")
    # Cloned ring is independent.
    loot.install_symmetric("extra", b"x" * 32)
    assert not ring.has_symmetric("extra")


def test_ring_merge_accumulates(keystore):
    a = keystore.ring_for(symmetric_ids=["spines.internal"])
    b = keystore.ring_for(signing_principals=["replica2"])
    attacker = KeyRing()
    attacker.merge(a.clone())
    attacker.merge(b.clone())
    assert attacker.has_symmetric("spines.internal")
    assert attacker.can_sign_as("replica2")


# ---------------------------------------------------------------------------
# MACs
# ---------------------------------------------------------------------------
def test_mac_roundtrip(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    payload = {"type": "hello", "seq": 7}
    mac = mac_payload(ring, "spines.internal", payload)
    assert verify_mac(ring, mac, payload)


def test_mac_detects_tampering(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    mac = mac_payload(ring, "spines.internal", {"seq": 7})
    assert not verify_mac(ring, mac, {"seq": 8})


def test_mac_requires_key(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    stranger = keystore.ring_for(symmetric_ids=["spines.external"])
    mac = mac_payload(ring, "spines.internal", "data")
    assert not verify_mac(stranger, mac, "data")
    with pytest.raises(KeyError_):
        mac_payload(stranger, "spines.internal", "data")


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------
def test_signature_roundtrip(keystore):
    signer = keystore.ring_for(signing_principals=["replica1"])
    verifier = keystore.ring_for()  # holds no secrets, only the registry
    sig = sign_payload(signer, "replica1", {"update": 1})
    assert verify_signature(verifier, sig, {"update": 1})


def test_signature_tampering_detected(keystore):
    signer = keystore.ring_for(signing_principals=["replica1"])
    sig = sign_payload(signer, "replica1", {"update": 1})
    assert not verify_signature(signer, sig, {"update": 2})


def test_cannot_sign_as_other_principal(keystore):
    ring = keystore.ring_for(signing_principals=["replica1"])
    with pytest.raises(KeyError_):
        sign_payload(ring, "replica2", "data")


def test_forged_signature_never_verifies(keystore):
    verifier = keystore.ring_for()
    forged = forge_signature("replica1")
    assert not verify_signature(verifier, forged, "anything")


def test_verification_of_unknown_principal_fails(keystore):
    signer = keystore.ring_for(signing_principals=["replica1"])
    sig = sign_payload(signer, "replica1", "x")
    lonely = KeyRing()  # no registry at all
    assert not verify_signature(lonely, sig, "x")


# ---------------------------------------------------------------------------
# sealed payloads
# ---------------------------------------------------------------------------
def test_seal_open_roundtrip(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    sealed = seal(ring, "spines.internal", {"cmd": "trip breaker"})
    assert sealed.open(ring) == {"cmd": "trip breaker"}


def test_seal_requires_key(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    outsider = keystore.ring_for(symmetric_ids=["spines.external"])
    sealed = seal(ring, "spines.internal", "secret")
    with pytest.raises(SealError):
        sealed.open(outsider)


def test_tampered_seal_detected(keystore):
    ring = keystore.ring_for(symmetric_ids=["spines.internal"])
    sealed = seal(ring, "spines.internal", "secret")
    tampered = sealed.tamper("evil")
    with pytest.raises(SealError):
        tampered.open(ring)
