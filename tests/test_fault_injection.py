"""Seeded chaos schedules against the cluster, driven by the
:mod:`repro.faults` DSL, checking the BFT invariants that must never
break within the f + k budget — agreement (no two correct replicas
diverge) and validity (everything executed was submitted by a client).

The schedules mirror the original hand-rolled chaos loops (same seeds,
same crash/flap cadence); the FaultPlan budget guard now enforces the
f + k = 2 simultaneous-failure bound that the loops maintained by hand,
and a MonitorSuite checks the invariants continuously instead of only
at the end.
"""

import pytest

from repro.api import Simulator
from repro.faults import FaultPlan, MonitorSuite
from tests.conftest import build_cluster

SEEDS = [1001, 1002, 1003]


def chaos_run(seed, monitor=False):
    sim = Simulator(seed=seed)
    cluster = build_cluster(sim, f=1, k=1)
    rng = sim.rng.child("chaos")
    client_a = cluster.add_client("chaos-a", port=7501)
    client_b = cluster.add_client("chaos-b", port=7502)
    submitted = []

    def submit():
        client = client_a if rng.random() < 0.5 else client_b
        op = {"set": (f"k{len(submitted)}", len(submitted))}
        submitted.append(op)
        client.submit(op)

    # Chaos: crash/recover cycles and link flaps on the original
    # cadence.  Victims are picked at injection time from the plan's
    # seeded stream; the guard denies anything that would push past
    # the f + k = 2 budget.
    plan = FaultPlan(f"chaos-{seed}")
    for i in range(5):
        plan.crash(at=1.0 + i * 2.1, duration=1.5)
        plan.flap_link(at=2.0 + i * 1.7, flaps=1, down_for=0.5)
    armed = plan.arm(sim, cluster)

    suite = None
    if monitor:
        suite = MonitorSuite(sim, cluster, armed=armed)
        suite.watch_client(client_a)
        suite.watch_client(client_b)
        suite.start()

    # Continuous workload (after monitor start, so every execution is
    # recorded from the beginning).
    for i in range(30):
        sim.schedule(0.2 + i * 0.3, submit)

    sim.run(until=25.0)
    return cluster, submitted, armed, suite


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_preserves_agreement_and_validity(seed):
    cluster, submitted, armed, suite = chaos_run(seed, monitor=True)
    # The plan really fired, and the guard kept it within budget.
    summary = armed.summary()
    assert summary["injected"] > 0
    assert not summary["went_over_budget"]
    # Agreement: all correct NORMAL replicas share one oplog prefix
    # relationship (the shorter log is a prefix of the longer).
    logs = []
    for name, rep in cluster.replicas.items():
        if rep.running and rep.state == "normal":
            logs.append(tuple(cluster.apps[name].oplog))
    assert logs
    longest = max(logs, key=len)
    for log in logs:
        assert longest[:len(log)] == log, f"divergence with seed {seed}"
    # Validity: nothing executed that was not submitted.
    submitted_reprs = {repr(op) for op in submitted}
    for log in logs:
        for (_cid, _cseq, op_repr) in log:
            assert op_repr in submitted_reprs
    # Liveness (weak): the majority of updates executed despite chaos.
    assert len(longest) >= len(submitted) * 0.7
    # The live monitors agree: an in-budget run produces no violations.
    assert suite.passed(), [v.snapshot() for v in suite.violations]


@pytest.mark.parametrize("seed", [2001])
def test_chaos_then_quiesce_converges(seed):
    """After the chaos stops, every replica converges to the same log."""
    cluster, submitted, armed, _suite = chaos_run(seed)
    sim = cluster.sim
    # Ensure everyone is up and give reconciliation time to finish.
    for name, rep in cluster.replicas.items():
        if not rep.running:
            rep.recover()
    sim.run(until=40.0)
    logs = {tuple(cluster.apps[name].oplog)
            for name, rep in cluster.replicas.items()
            if rep.state == "normal"}
    assert len(logs) == 1
    assert len(next(iter(logs))) == len(submitted)
