"""Randomized fault injection: seeded chaos schedules against the
cluster, checking the two BFT invariants that must never break —
agreement (no two correct replicas diverge) and validity (everything
executed was submitted by a client).
"""

import pytest

from repro.api import Simulator
from tests.conftest import build_cluster

SEEDS = [1001, 1002, 1003]


def chaos_run(seed):
    sim = Simulator(seed=seed)
    cluster = build_cluster(sim, f=1, k=1)
    rng = sim.rng.child("chaos")
    client_a = cluster.add_client("chaos-a", port=7501)
    client_b = cluster.add_client("chaos-b", port=7502)
    submitted = []

    def submit():
        client = client_a if rng.random() < 0.5 else client_b
        op = {"set": (f"k{len(submitted)}", len(submitted))}
        submitted.append(op)
        client.submit(op)

    # Continuous workload.
    for i in range(30):
        sim.schedule(0.2 + i * 0.3, submit)

    # Chaos: random crash/recover and link flaps, never exceeding the
    # f + k = 2 simultaneous-failure budget.
    names = cluster.config.replica_names
    down = set()

    def crash_one():
        if len(down) >= 2:
            return
        candidates = [n for n in names if n not in down]
        victim = rng.choice(candidates)
        down.add(victim)
        cluster.replicas[victim].crash()
        sim.schedule(rng.uniform(0.5, 2.0), recover_one, victim)

    def recover_one(name):
        cluster.replicas[name].recover()
        sim.schedule(1.5, lambda: down.discard(name)
                     if cluster.replicas[name].state == "normal"
                     else sim.schedule(1.0, lambda: down.discard(name)))

    def flap_link():
        victim = rng.choice(names)
        if victim in down:
            return
        link = cluster.internal_lan.link_of(
            cluster.replicas[victim].internal_daemon.host)
        link.set_up(False)
        sim.schedule(rng.uniform(0.2, 0.8), link.set_up, True)

    for i in range(5):
        sim.schedule(1.0 + i * 2.1, crash_one)
        sim.schedule(2.0 + i * 1.7, flap_link)

    sim.run(until=25.0)
    return cluster, submitted


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_preserves_agreement_and_validity(seed):
    cluster, submitted = chaos_run(seed)
    # Agreement: all correct NORMAL replicas share one oplog prefix
    # relationship (the shorter log is a prefix of the longer).
    logs = []
    for name, rep in cluster.replicas.items():
        if rep.running and rep.state == "normal":
            logs.append(tuple(cluster.apps[name].oplog))
    assert logs
    longest = max(logs, key=len)
    for log in logs:
        assert longest[:len(log)] == log, f"divergence with seed {seed}"
    # Validity: nothing executed that was not submitted.
    submitted_reprs = {repr(op) for op in submitted}
    for log in logs:
        for (_cid, _cseq, op_repr) in log:
            assert op_repr in submitted_reprs
    # Liveness (weak): the majority of updates executed despite chaos.
    assert len(longest) >= len(submitted) * 0.7


@pytest.mark.parametrize("seed", [2001])
def test_chaos_then_quiesce_converges(seed):
    """After the chaos stops, every replica converges to the same log."""
    cluster, submitted = chaos_run(seed)
    sim = cluster.sim
    # Ensure everyone is up and give reconciliation time to finish.
    for name, rep in cluster.replicas.items():
        if not rep.running:
            rep.recover()
    sim.run(until=40.0)
    logs = {tuple(cluster.apps[name].oplog)
            for name, rep in cluster.replicas.items()
            if rep.state == "normal"}
    assert len(logs) == 1
    assert len(next(iter(logs))) == len(submitted)
