"""Threshold-signed directive mode: the proxy verifies one combined
k-of-n signature instead of counting matching directives."""

import pytest

from repro.api import GridSpec, Simulator, build_spire
from repro.scada.events import CommandDirective


@pytest.fixture
def system():
    sim = Simulator(seed=97)
    config = GridSpec.single_plant(n_distribution_plcs=0, n_generation_plcs=0,
                          n_hmis=1, use_threshold_directives=True).spire_config()
    spire = build_spire(sim, config)
    sim.run(until=4.0)
    return sim, spire


def test_threshold_command_roundtrip(system):
    sim, spire = system
    hmi = spire.hmis[0]
    topo = spire.physical_plc.topology
    hmi.command_breaker("plc-physical", "B57", False)
    sim.run(until=sim.now + 3.0)
    assert topo.get_breaker("B57") is False
    # The proxy logged a combined signature.
    records = sim.log.records(category="proxy.threshold")
    assert records
    assert len(records[0].data["signers"]) == spire.prime_config.vouch


def test_single_master_partial_is_insufficient(system):
    sim, spire = system
    proxy = spire.proxies[0]
    replica_name = spire.prime_config.replica_names[0]
    master = spire.masters[replica_name]
    directive = CommandDirective(command_id=("evil", 5), plc="plc-physical",
                                 breaker="B10-1", close=False,
                                 replica=replica_name)
    directive.partial = master.threshold_share.sign_partial(
        directive.signed_view())
    for _ in range(5):   # replays of the same partial do not help
        master._push(proxy.directive_addr, directive)
    sim.run(until=sim.now + 3.0)
    assert spire.physical_plc.topology.get_breaker("B10-1") is True
    assert proxy.commands_applied == 0


def test_directive_without_partial_ignored_in_threshold_mode(system):
    sim, spire = system
    proxy = spire.proxies[0]
    replica_name = spire.prime_config.replica_names[0]
    master = spire.masters[replica_name]
    bare = CommandDirective(command_id=("evil", 6), plc="plc-physical",
                            breaker="B10-1", close=False,
                            replica=replica_name)
    master._push(proxy.directive_addr, bare)
    sim.run(until=sim.now + 2.0)
    assert spire.physical_plc.topology.get_breaker("B10-1") is True


def test_forged_partial_never_combines(system):
    sim, spire = system
    proxy = spire.proxies[0]
    from repro.crypto.threshold import PartialSignature
    names = spire.prime_config.replica_names
    directive = CommandDirective(command_id=("evil", 7), plc="plc-physical",
                                 breaker="B10-1", close=False,
                                 replica=names[0])
    # One real partial + forged partials claiming other replicas.
    directive.partial = spire.masters[names[0]].threshold_share.sign_partial(
        directive.signed_view())
    proxy._directive_in(("x", 1), directive)
    for name in names[1:]:
        forged = CommandDirective(command_id=("evil", 7), plc="plc-physical",
                                  breaker="B10-1", close=False, replica=name)
        forged.partial = PartialSignature(
            group=spire.threshold_scheme.group, share_holder=name,
            tag=b"\x00" * 32)
        proxy._directive_in(("x", 1), forged)
    sim.run(until=sim.now + 2.0)
    assert spire.physical_plc.topology.get_breaker("B10-1") is True
    assert proxy.commands_applied == 0
