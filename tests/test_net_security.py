"""Security-mechanism tests for the network substrate.

These verify the *mechanics* that the red-team experiment exercised:
ARP poisoning against dynamic vs static tables, switch port security,
port-scan visibility against hardened hosts, and passive capture.
"""

import pytest

from repro.net import (
    ArpMessage, BROADCAST_MAC, Capture, ETHERTYPE_ARP, Frame, Host, Lan,
    PortScanner, locked_down_firewall, INBOUND,
)
from repro.api import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=7)


def build(sim, harden=False):
    """A LAN with victim pair (a talks to b) and an attacker host."""
    lan = Lan(sim, "ops", "10.0.0.0/24")
    a = Host(sim, "a")
    b = Host(sim, "b")
    attacker = Host(sim, "attacker")
    for h in (a, b, attacker):
        lan.connect(h)
    if harden:
        lan.harden()
    return lan, a, b, attacker


def gratuitous_arp(lan, attacker, claim_ip):
    """Attacker broadcasts an ARP reply claiming ``claim_ip``."""
    iface = lan.interface_of(attacker)
    arp = ArpMessage(op="reply", sender_mac=iface.mac, sender_ip=claim_ip,
                     target_mac=BROADCAST_MAC, target_ip="0.0.0.0")
    frame = Frame(src_mac=iface.mac, dst_mac=BROADCAST_MAC,
                  ethertype=ETHERTYPE_ARP, payload=arp)
    iface.inject(frame)


def test_arp_poisoning_succeeds_on_dynamic_lan(sim):
    lan, a, b, attacker = build(sim, harden=False)
    received_by_b, sniffed = [], []
    b.udp_bind(9000, lambda *args: received_by_b.append(args))
    attacker.set_sniffer(lambda iface, frame: sniffed.append(frame))
    # Prime a's ARP cache with the real mapping, then poison it.
    a.udp_send(lan.ip_of(b), 9000, "legit", src_port=1)
    sim.run(until=1.0)
    gratuitous_arp(lan, attacker, claim_ip=lan.ip_of(b))
    sim.run(until=2.0)
    a.udp_send(lan.ip_of(b), 9000, "intercept-me", src_port=1)
    sim.run(until=3.0)
    # The second datagram went to the attacker's MAC, not to b.
    assert [p for (_, _, p) in received_by_b] == ["legit"]
    payloads = [f.payload.payload.payload for f in sniffed
                if getattr(getattr(f.payload, "payload", None), "payload", None)]
    assert "intercept-me" in payloads


def test_arp_poisoning_blocked_by_static_tables(sim):
    lan, a, b, attacker = build(sim, harden=True)
    received_by_b = []
    b.udp_bind(9000, lambda *args: received_by_b.append(args))
    gratuitous_arp(lan, attacker, claim_ip=lan.ip_of(b))
    sim.run(until=1.0)
    a.udp_send(lan.ip_of(b), 9000, "protected", src_port=1)
    sim.run(until=2.0)
    assert [p for (_, _, p) in received_by_b] == ["protected"]
    iface_a = lan.interface_of(a)
    assert iface_a.arp.lookup(lan.ip_of(b), sim.now) == lan.interface_of(b).mac


def test_switch_port_security_blocks_unknown_and_spoofed_macs(sim):
    lan, a, b, attacker = build(sim, harden=True)
    switch = lan.switch
    # Remove the attacker from the static map: a machine plugged into
    # the switch whose MAC was never registered.
    mapping = {mac: port for mac, port in lan._iface_port.items()
               if mac != lan.interface_of(attacker).mac}
    switch.configure_static_mapping(mapping)
    received_by_b = []
    b.udp_bind(9000, lambda *args: received_by_b.append(args))
    # 1) Attacker's own MAC: dropped at ingress.
    iface_atk = lan.interface_of(attacker)
    iface_atk.arp.add_static(lan.ip_of(b), lan.interface_of(b).mac)
    attacker.udp_send(lan.ip_of(b), 9000, "from-unknown-mac", src_port=6)
    # 2) Spoofing b's MAC from the attacker's port: also dropped.
    spoofed = Frame(src_mac=lan.interface_of(b).mac,
                    dst_mac=lan.interface_of(a).mac,
                    ethertype=ETHERTYPE_ARP,
                    payload=ArpMessage(op="reply",
                                       sender_mac=lan.interface_of(b).mac,
                                       sender_ip=lan.ip_of(b),
                                       target_mac=lan.interface_of(a).mac,
                                       target_ip=lan.ip_of(a)))
    iface_atk.inject(spoofed)
    sim.run(until=2.0)
    assert received_by_b == []
    assert switch.frames_blocked >= 2


def test_port_scan_sees_services_on_open_host(sim):
    from repro.net import ubuntu_desktop_2016
    lan = Lan(sim, "lan", "10.0.0.0/24")
    target = Host(sim, "target", os_profile=ubuntu_desktop_2016())
    attacker = Host(sim, "attacker")
    lan.connect(target)
    lan.connect(attacker)
    reports = []
    PortScanner(attacker).scan(lan.ip_of(target), reports.append)
    sim.run(until=5.0)
    assert len(reports) == 1
    report = reports[0]
    assert 22 in report.open_ports
    assert 445 in report.open_ports
    assert report.any_visibility


def test_port_scan_of_locked_down_host_sees_nothing(sim):
    lan = Lan(sim, "lan", "10.0.0.0/24")
    target = Host(sim, "target", firewall=locked_down_firewall())
    attacker = Host(sim, "attacker")
    lan.connect(target)
    lan.connect(attacker)
    target.tcp_listen(8100, lambda conn: None)  # a real service, hidden
    reports = []
    PortScanner(attacker).scan(lan.ip_of(target), reports.append)
    sim.run(until=10.0)
    report = reports[0]
    assert not report.any_visibility
    assert report.filtered_ports == sorted(report.results)


def test_port_scan_allowed_peer_still_sees_allowed_port(sim):
    """Firewall allow-rules are per remote IP: the peer that is allowed
    can reach the port; the attacker cannot."""
    lan = Lan(sim, "lan", "10.0.0.0/24")
    target = Host(sim, "target", firewall=locked_down_firewall())
    peer = Host(sim, "peer")
    attacker = Host(sim, "attacker")
    for h in (target, peer, attacker):
        lan.connect(h)
    target.firewall.allow(INBOUND, "tcp", remote_ip=lan.ip_of(peer),
                          local_port=8100)
    target.tcp_listen(8100, lambda conn: None)
    peer_reports, attacker_reports = [], []
    PortScanner(peer, ports=[8100]).scan(lan.ip_of(target), peer_reports.append)
    PortScanner(attacker, ports=[8100]).scan(lan.ip_of(target),
                                             attacker_reports.append)
    sim.run(until=5.0)
    assert peer_reports[0].open_ports == [8100]
    assert attacker_reports[0].filtered_ports == [8100]


def test_arp_announce_all_leaks_other_interface(sim):
    """A dual-homed host answering ARP for its other interface's IP on
    the wrong network leaks its presence (the behaviour the paper
    disabled)."""
    external = Lan(sim, "ext", "10.1.0.0/24")
    internal = Lan(sim, "int", "10.2.0.0/24")
    replica = Host(sim, "replica")
    attacker = Host(sim, "attacker")
    external.connect(replica)
    internal_iface = internal.connect(replica)
    external.connect(attacker)

    replica.arp_announce_all = True
    leaks = []
    attacker.set_sniffer(lambda iface, frame: leaks.append(frame)
                         if frame.ethertype == ETHERTYPE_ARP
                         and frame.payload.op == "reply" else None)
    atk_iface = external.interface_of(attacker)
    probe = ArpMessage(op="request", sender_mac=atk_iface.mac,
                       sender_ip=atk_iface.ip, target_mac="00:00:00:00:00:00",
                       target_ip=internal_iface.ip)
    atk_iface.inject(Frame(src_mac=atk_iface.mac, dst_mac=BROADCAST_MAC,
                           ethertype=ETHERTYPE_ARP, payload=probe))
    sim.run(until=1.0)
    assert leaks, "misconfigured host must answer for its internal IP"

    # Hardened setting: no answer, no leak.
    replica.arp_announce_all = False
    leaks.clear()
    atk_iface.inject(Frame(src_mac=atk_iface.mac, dst_mac=BROADCAST_MAC,
                           ethertype=ETHERTYPE_ARP, payload=probe))
    sim.run(until=2.0)
    assert not leaks


def test_capture_records_traffic_passively(sim):
    lan, a, b, attacker = build(sim)
    capture = Capture("ops")
    lan.switch.add_span_tap(capture.span_tap)
    b.udp_bind(9000, lambda *args: None)
    a.udp_send(lan.ip_of(b), 9000, "payload", src_port=4)
    sim.run(until=1.0)
    udp_records = [r for r in capture.records if r.proto == "udp"]
    assert udp_records
    rec = udp_records[0]
    assert rec.src_ip == lan.ip_of(a)
    assert rec.dst_ip == lan.ip_of(b)
    assert rec.dst_port == 9000
    assert rec.size > 0
    # ARP resolution traffic was also observed.
    assert any(r.is_arp for r in capture.records)


def test_compromise_yields_key_ring(sim):
    from repro.crypto import KeyStore
    lan, a, b, attacker = build(sim)
    ks = KeyStore()
    ks.create_symmetric("spines.internal")
    a.key_ring = ks.ring_for(symmetric_ids=["spines.internal"])
    loot = a.compromise("user")
    assert loot.has_symmetric("spines.internal")
    assert a.compromised_level == "user"
    a.compromise("root")
    assert a.compromised_level == "root"
    # Compromising at a lower level later must not downgrade.
    a.compromise("user")
    assert a.compromised_level == "root"
