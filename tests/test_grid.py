"""The declarative grid layer: spec validation and JSON round-trips,
single-plant parity with the legacy hand-wired build, cross-substation
physics coupling, campaign integration, and the per-substation report
section."""

import json
import os

import pytest

from repro.api import (
    GridSpec, GridSpecError, Simulator, build_grid_section,
    build_deployment_report, build_spire, build_world, load_grid_spec,
    make_town_spec, report_digest, run_campaign,
)

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_spec_requires_site_or_substations():
    with pytest.raises(GridSpecError, match="either 'site'"):
        GridSpec(name="empty")


def test_spec_site_and_substations_are_exclusive():
    from repro.grid import SubstationSpec
    with pytest.raises(GridSpecError, match="mutually exclusive"):
        GridSpec(name="both", site="plant",
                 substations=[SubstationSpec(name="s1")])


def test_spec_rejects_unknown_site():
    with pytest.raises(GridSpecError, match="spec.site"):
        GridSpec.single_site("nuclear")


def test_spec_rejects_duplicate_substations():
    from repro.grid import SubstationSpec
    with pytest.raises(GridSpecError, match="duplicate substation"):
        GridSpec(name="dup", substations=[SubstationSpec(name="s1"),
                                          SubstationSpec(name="s1")])


def test_spec_rejects_unknown_client_region():
    from repro.grid import ClientPopulationSpec, SubstationSpec
    with pytest.raises(GridSpecError, match="clients\\[0\\]"):
        GridSpec(name="bad-region",
                 substations=[SubstationSpec(name="s1", region="east")],
                 clients=[ClientPopulationSpec(name="ops",
                                               regions=("west",))])


def test_from_dict_errors_carry_the_path():
    data = make_town_spec(2).to_dict()
    data["substations"][0]["protocl"] = "modbus"   # typo
    with pytest.raises(GridSpecError, match="spec.substations\\[0\\]"):
        GridSpec.from_dict(data)


def test_spire_config_requires_single_site():
    with pytest.raises(GridSpecError, match="single-site"):
        make_town_spec(2).spire_config()


# ----------------------------------------------------------------------
# JSON round-trip and the committed example specs
# ----------------------------------------------------------------------
def test_json_round_trip_is_lossless():
    for spec in (GridSpec.single_plant(n_hmis=1, seed=5),
                 make_town_spec(4, name="rt-town", seed=3)):
        assert GridSpec.from_json(spec.to_json()) == spec
        assert json.loads(spec.to_json()) == spec.to_dict()


@pytest.mark.parametrize("filename,substations", [
    ("single_plant.json", 0), ("town5.json", 5), ("city25.json", 25),
])
def test_example_specs_load(filename, substations):
    spec = load_grid_spec(os.path.join(EXAMPLES, filename))
    assert len(spec.substations) == substations
    if substations == 0:
        assert spec.site == "plant"
        assert spec.spire_config().n_hmis == 3
    else:
        assert spec.f >= 1 and spec.clients


def test_load_grid_spec_wraps_errors_with_path():
    with pytest.raises(GridSpecError, match="no-such-spec.json"):
        load_grid_spec("no-such-spec.json")


# ----------------------------------------------------------------------
# Single-plant parity: the grid world is behavior-identical to the
# legacy hand-wired build for the same seed.
# ----------------------------------------------------------------------
def _drive_commands(sim, hmis):
    sim.run(until=5.0)
    hmi = hmis[0]
    for index in range(6):
        hmi.command_breaker("plc-physical", "B57", index % 2 == 0)
        sim.run(until=sim.now + 1.0)
    sim.run(until=13.0)
    return sim.metrics.merged_histogram("prime.confirm_latency").summary()


def test_single_plant_world_matches_legacy_build():
    overrides = dict(n_distribution_plcs=2, n_generation_plcs=0,
                     n_hmis=1, seed=42)
    sim = Simulator(seed=42)
    system = build_spire(sim, GridSpec.single_plant(
        **overrides).spire_config())
    legacy = _drive_commands(sim, system.hmis)

    world = build_world(GridSpec.single_plant(**overrides))
    grid = _drive_commands(world.sim, world.hmis)

    assert legacy["samples"] > 0
    assert legacy == grid   # same seed -> same confirm-latency digest


# ----------------------------------------------------------------------
# Physics: a field fault in one substation perturbs the others
# ----------------------------------------------------------------------
def test_substation_trip_propagates_across_the_grid():
    world = build_world(make_town_spec(5, seed=0), seed=9)
    world.run(until=2.0)
    baseline = world.physics.snapshot()
    assert baseline["frequency_excursions"] == 0
    assert baseline["substations"]["sub-01"]["voltage_pu"] >= 0.999

    # sub-05 is the generating substation; losing it starves the grid.
    assert world.trip_substation("sub-05") > 0
    world.run(until=6.0)
    faulted = world.physics.snapshot()
    assert faulted["frequency_hz"] < 59.5
    assert faulted["substations"]["sub-05"]["energized_fraction"] < 1.0
    # Neighbours sag even though their own breakers never moved.
    assert faulted["substations"]["sub-01"]["voltage_pu"] < 0.999

    world.restore_substation("sub-05")
    world.run(until=10.0)
    recovered = world.physics.snapshot()
    # Inertia makes the recovery gradual, but it must be under way.
    assert recovered["frequency_hz"] > faulted["frequency_hz"] + 0.5
    assert recovered["frequency_excursions"] >= 1


# ----------------------------------------------------------------------
# Campaigns over a grid: monitors hold and reports are job-invariant
# ----------------------------------------------------------------------
def test_grid_campaign_passes_and_is_job_invariant():
    spec = make_town_spec(2, name="campaign-town", seed=0)
    reports = [run_campaign(scenarios=["baseline"], seeds=[1],
                            duration=8.0, jobs=jobs, grid=spec)
               for jobs in (1, 2)]
    for report in reports:
        assert report["passed"]
        assert report["config"]["grid"]["name"] == "campaign-town"
        runs = report["scenarios"]["baseline"]["runs"]
        assert runs[0]["grid"]["substations"] == 2
    assert report_digest(reports[0]) == report_digest(reports[1])


# ----------------------------------------------------------------------
# Report: the per-substation section
# ----------------------------------------------------------------------
def test_grid_section_and_markdown_rendering():
    from repro.obs import render_markdown
    world = build_world(make_town_spec(2, seed=0), seed=4)
    world.start_workload(commands=4)
    world.run(until=6.0)
    section = build_grid_section(world)
    assert section["replicas"]["total"] == 6
    names = [row["name"] for row in section["substations"]]
    assert names == ["sub-01", "sub-02"]
    for row in section["substations"]:
        assert row["breakers"] > 0 and row["proxy_polls"] > 0
    assert section["frequency"]["excursions"] == 0

    report = build_deployment_report(meta={"seed": 4}, grid=section)
    rendered = render_markdown(report)
    assert "## Grid:" in rendered and "sub-02" in rendered


def test_cli_grid_subcommand_runs_live_report(capsys):
    from repro.cli import main
    rc = main(["grid", "--substations", "2", "--duration", "12",
               "--skip-campaign", "--seed", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "## Grid:" in out and "sub-01" in out
