"""Tests for MultiCompiler diversity, exploits, and proactive recovery."""

from repro.diversity import (
    BASE_EXPLOIT_EFFORT_HOURS, CodeVariant, Exploit, ExploitDeveloper,
    MultiCompiler, exploit_effort_hours,
)
from repro.util.rng import DeterministicRng


def make_compiler(diversify=True):
    return MultiCompiler(DeterministicRng(5), diversify=diversify)


def test_diversified_builds_have_distinct_layouts():
    compiler = make_compiler()
    variants = [compiler.compile("spines") for _ in range(20)]
    layouts = {v.layout_seed for v in variants}
    assert len(layouts) == 20


def test_monoculture_builds_share_layout():
    compiler = make_compiler(diversify=False)
    a = compiler.compile("spines")
    b = compiler.compile("spines")
    c = compiler.compile("scada-master")
    assert a.layout_seed == b.layout_seed
    assert a.layout_seed != c.layout_seed   # per-program, still


def test_exploit_only_works_on_matching_layout():
    compiler = make_compiler()
    victim = compiler.compile("spines")
    other = compiler.compile("spines")
    exploit = Exploit(program="spines", target_layout=victim.layout_seed,
                      vuln_id="overflow-1", developed_at=0.0)
    assert exploit.attempt(victim)
    assert not exploit.attempt(other)
    wrong_program = compiler.compile("scada-master")
    assert not exploit.attempt(wrong_program)


def test_one_exploit_compromises_entire_monoculture():
    """The ablation that motivates diversity (Section II)."""
    compiler = make_compiler(diversify=False)
    fleet = [compiler.compile("scada-master") for _ in range(6)]
    exploit = Exploit(program="scada-master",
                      target_layout=fleet[0].layout_seed,
                      vuln_id="overflow-1", developed_at=0.0)
    assert all(exploit.attempt(variant) for variant in fleet)


def test_exploit_effort_reflects_hygiene():
    sloppy = CodeVariant(program="spines", layout_seed=1, build_id=1,
                         debug_symbols=True, options_in_binary=False)
    tight = CodeVariant(program="spines", layout_seed=2, build_id=2,
                        debug_symbols=False, options_in_binary=True)
    assert exploit_effort_hours(sloppy) < BASE_EXPLOIT_EFFORT_HOURS
    assert exploit_effort_hours(tight) > exploit_effort_hours(sloppy)


def test_exploit_developer_accumulates_effort_and_arsenal():
    developer = ExploitDeveloper(clock=lambda: 42.0, speedup=2.0)
    compiler = make_compiler()
    variant = compiler.compile("spines")
    exploit = developer.study_and_develop(variant, "overflow-1")
    assert developer.hours_spent > 0
    assert developer.try_all(variant) is exploit
    fresh = compiler.compile("spines")
    assert developer.try_all(fresh) is None


def test_recovery_invalidates_developed_exploits():
    """After proactive recovery installs a fresh variant, the
    attacker's exploit no longer matches — the paper's argument for
    recovery + diversity over a long system lifetime."""
    from repro.diversity import ProactiveRecoveryScheduler, RecoveryTarget
    from repro.api import Process, Simulator

    sim = Simulator(seed=4)

    class FakeReplica(Process):
        def __init__(self):
            super().__init__(sim, "fake")
            self.crashes = 0
            self.recoveries = 0

        def crash(self):
            self.crashes += 1

        def recover(self):
            self.recoveries += 1

    class FakeHost:
        name = "host1"
        compromised_level = "root"

    compiler = MultiCompiler(sim.rng, diversify=True)
    replica = FakeReplica()
    target = RecoveryTarget(name="r1", host=FakeHost(), replica=replica)
    scheduler = ProactiveRecoveryScheduler(sim, compiler, [target],
                                           period=5.0, downtime=1.0, k=1)
    before = target.variants["scada-master"]
    developer = ExploitDeveloper(clock=lambda: sim.now)
    exploit = developer.study_and_develop(before, "overflow-1")
    assert exploit.attempt(before)

    scheduler.start()
    sim.run(until=7.0)
    after = target.variants["scada-master"]
    assert after.build_id != before.build_id
    assert not exploit.attempt(after)
    assert target.host.compromised_level is None   # cleansed
    assert replica.crashes == 1 and replica.recoveries == 1
    assert scheduler.recoveries_completed == 1


def test_scheduler_never_exceeds_k():
    from repro.diversity import ProactiveRecoveryScheduler, RecoveryTarget
    from repro.api import Process, Simulator

    sim = Simulator(seed=6)
    down_now = []
    max_down = {"n": 0}

    class FakeReplica(Process):
        def __init__(self, name):
            super().__init__(sim, name)

        def crash(self):
            down_now.append(self.name)
            max_down["n"] = max(max_down["n"], len(down_now))

        def recover(self):
            down_now.remove(self.name)

    class FakeHost:
        def __init__(self, name):
            self.name = name
            self.compromised_level = None

    compiler = MultiCompiler(sim.rng)
    targets = [RecoveryTarget(name=f"r{i}", host=FakeHost(f"h{i}"),
                              replica=FakeReplica(f"rep{i}"))
               for i in range(6)]
    # Recovery takes longer than the period: pressure to overlap.
    scheduler = ProactiveRecoveryScheduler(sim, compiler, targets,
                                           period=1.0, downtime=2.5, k=1)
    scheduler.start()
    sim.run(until=20.0)
    assert max_down["n"] <= 1
    assert scheduler.recoveries_completed >= 4
    assert scheduler.recoveries_skipped > 0
    # The int attributes and the telemetry counters agree.
    assert sim.metrics.total("recovery.recoveries_completed") == \
        scheduler.recoveries_completed
    assert sim.metrics.total("recovery.recoveries_skipped") == \
        scheduler.recoveries_skipped


def test_scheduler_round_robin_is_fair_under_pressure():
    """With downtime > period every target still gets its turn: a tick
    that lands while the next-in-line is mid-recovery moves on to the
    following target instead of burning the whole period, and a
    budget-full tick does not advance past a never-attempted target."""
    from repro.diversity import ProactiveRecoveryScheduler, RecoveryTarget
    from repro.api import Process, Simulator

    sim = Simulator(seed=8)

    class FakeReplica(Process):
        def crash(self):
            pass

        def recover(self):
            pass

    class FakeHost:
        def __init__(self, name):
            self.name = name
            self.compromised_level = None

    compiler = MultiCompiler(sim.rng)
    targets = [RecoveryTarget(name=f"r{i}", host=FakeHost(f"h{i}"),
                              replica=FakeReplica(sim, f"rep{i}"))
               for i in range(6)]
    scheduler = ProactiveRecoveryScheduler(sim, compiler, targets,
                                           period=1.0, downtime=1.5, k=2)
    scheduler.start()
    sim.run(until=30.0)
    counts = [target.recoveries for target in targets]
    assert min(counts) > 0, f"a target was starved: {counts}"
    assert max(counts) - min(counts) <= 1, f"unfair rotation: {counts}"
