"""Hot-path optimisation tests: encode-once caching, verification
memoisation, and the naive/cached equivalence guarantees.

The optimisations must be *invisible*: same bytes signed, same verdicts,
same simulation trace — just fewer encodes.  These tests pin down the
invariants the caches rely on and the ways they must not weaken
detection (tampering, forgery, LRU bounds, key rotation).
"""

import hashlib

import pytest

from repro.api import Simulator
from repro.crypto import (
    KeyStore, cache_stats, canonical_bytes, forge_signature, mac_payload,
    publish_cache_metrics, reset_cache_stats, set_cache_enabled,
    sign_payload, verify_mac, verify_signature,
)
from repro.crypto.auth import VERIFY_CACHE_SIZE
from repro.crypto.serialize import canonical_cached, payload_bytes
from repro.prime.messages import ClientUpdate, PoRequestBatch, SignedPrimeMessage

from tests.conftest import build_cluster


@pytest.fixture(autouse=True)
def _caches_on():
    """Every test starts with caching enabled and zeroed counters, and
    leaves the process-wide switch the way the rest of the suite
    expects it."""
    set_cache_enabled(True)
    reset_cache_stats()
    yield
    set_cache_enabled(True)
    reset_cache_stats()


@pytest.fixture
def ring():
    store = KeyStore()
    store.create_signing("replica1")
    store.create_symmetric("spines.internal")
    return store.ring_for(signing_principals=["replica1"],
                          symmetric_ids=["spines.internal"])


def _message(seq: int = 1) -> SignedPrimeMessage:
    update = ClientUpdate(client_id="c", client_seq=seq, op={"set": ("k", seq)})
    batch = PoRequestBatch(originator="replica1#0", start_seq=seq,
                           updates=[update])
    return SignedPrimeMessage(sender="replica1", body=batch)


# ---------------------------------------------------------------------------
# canonical serialization: mixed-type dict keys must not collide
# ---------------------------------------------------------------------------
def test_mixed_type_dict_keys_encode_apart():
    # Sorting keys by str() used to make {1: ...} and {"1": ...}
    # ambiguous; keys now sort by their type-tagged encoding.
    assert canonical_bytes({1: "x"}) != canonical_bytes({"1": "x"})
    assert canonical_bytes({1: "a", "1": "b"}) != \
        canonical_bytes({1: "b", "1": "a"})
    # and stays order-independent
    assert canonical_bytes({1: "a", "1": "b", 2.0: "c"}) == \
        canonical_bytes({2.0: "c", "1": "b", 1: "a"})


# ---------------------------------------------------------------------------
# encode-once caching
# ---------------------------------------------------------------------------
def test_frozen_view_bytes_match_naive_encoding():
    """Signing the message object covers the same bytes as signing its
    signed_view() dict — caching never changes what is authenticated."""
    message = _message()
    assert payload_bytes(message) == canonical_bytes(message.signed_view())
    set_cache_enabled(False)
    assert payload_bytes(message) == canonical_bytes(message.signed_view())


def test_signature_interoperates_between_object_and_view(ring):
    message = _message()
    over_object = sign_payload(ring, "replica1", message)
    assert verify_signature(ring, over_object, message.signed_view())
    over_view = sign_payload(ring, "replica1", message.signed_view())
    assert verify_signature(ring, over_view, message)


def test_encode_cache_counters_reach_metrics_registry(ring):
    message = _message()
    sign_payload(ring, "replica1", message)      # miss: first encode
    sign_payload(ring, "replica1", message)      # hit: cached bytes
    stats = cache_stats()
    assert stats["encode_misses"] >= 1
    assert stats["encode_hits"] >= 1

    sim = Simulator(seed=0)
    publish_cache_metrics(sim.metrics)
    hits = sim.metrics.get("crypto.encode_cache.hits", component="crypto")
    misses = sim.metrics.get("crypto.encode_cache.misses", component="crypto")
    assert hits.value == stats["encode_hits"]
    assert misses.value == stats["encode_misses"]
    # the bridge is monotonic: re-publishing never decreases counters
    publish_cache_metrics(sim.metrics)
    assert hits.value == stats["encode_hits"]


def test_canonical_cached_disabled_path_identical():
    value = _message()
    cached = canonical_cached(value)
    set_cache_enabled(False)
    assert canonical_bytes(value) == cached


# ---------------------------------------------------------------------------
# verification memoisation
# ---------------------------------------------------------------------------
def test_verify_cache_hits_on_repeat_verification(ring):
    message = _message()
    signature = sign_payload(ring, "replica1", message)
    assert verify_signature(ring, signature, message)
    before = cache_stats()["verify_hits"]
    for _ in range(5):
        assert verify_signature(ring, signature, message)
    assert cache_stats()["verify_hits"] == before + 5

    sim = Simulator(seed=0)
    publish_cache_metrics(sim.metrics)
    assert sim.metrics.get("crypto.verify_cache.hits",
                           component="crypto").value >= 5


def test_tampered_payload_fails_after_cached_success(ring):
    """A cached positive verdict must not leak to a different payload:
    the cache key includes the payload digest."""
    message = _message(seq=7)
    signature = sign_payload(ring, "replica1", message)
    assert verify_signature(ring, signature, message)          # cached True
    tampered = _message(seq=8)                                 # same shape, new content
    assert not verify_signature(ring, signature, tampered)
    # and the genuine message still verifies from cache afterwards
    assert verify_signature(ring, signature, message)


def test_forged_signature_stays_rejected(ring):
    message = _message()
    sign_payload(ring, "replica1", message)
    forged = forge_signature("replica1")
    assert not verify_signature(ring, forged, message)
    assert not verify_signature(ring, forged, message)  # cached False


def test_verify_cache_is_bounded(ring):
    """The per-principal LRU never exceeds VERIFY_CACHE_SIZE entries."""
    payloads = [{"seq": i} for i in range(VERIFY_CACHE_SIZE + 64)]
    signatures = [sign_payload(ring, "replica1", p) for p in payloads]
    for signature, payload in zip(signatures, payloads):
        assert verify_signature(ring, signature, payload)
    cache = ring._verify_cache["replica1"]
    assert len(cache) <= VERIFY_CACHE_SIZE
    # evicted entries simply re-verify (correctly) on the slow path
    assert verify_signature(ring, signatures[0], payloads[0])


def test_key_rotation_invalidates_verify_cache(ring):
    store = KeyStore()
    store.create_signing("replica1")
    fresh = store.ring_for(signing_principals=["replica1"])
    message = _message()
    signature = sign_payload(ring, "replica1", message)
    assert verify_signature(ring, signature, message)
    assert ring._verify_cache
    # installing new key material must drop memoised verdicts
    ring.merge(fresh)
    assert not ring._verify_cache


def test_mac_cache_respects_tamper_by_replacement(ring):
    from repro.spines.messages import LinkEnvelope, OverlayMessage
    message = OverlayMessage(src=("a", 1), dst=("b", 2), service="reliable",
                             payload={"op": 1}, seq=1, src_daemon="a")
    envelope = LinkEnvelope(sender="a", kind="data", body=message)
    envelope.mac = mac_payload(ring, "spines.internal", envelope)
    assert verify_mac(ring, envelope.mac, envelope)
    # tampering replaces objects -> new envelope -> fresh (failing) MAC view
    substitute = OverlayMessage(src=("a", 1), dst=("b", 2), service="reliable",
                                payload={"op": 2}, seq=1, src_daemon="a")
    resent = LinkEnvelope(sender="a", kind="data", body=substitute)
    assert not verify_mac(ring, envelope.mac, resent)


# ---------------------------------------------------------------------------
# kernel accounting
# ---------------------------------------------------------------------------
def test_pending_events_tracks_cancellations():
    sim = Simulator(seed=1)
    events = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    events[3].cancel()
    events[7].cancel()
    events[7].cancel()          # double-cancel must not double-count
    assert sim.pending_events == 8
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_executed == 8
    assert sim.metrics.get("sim.events_executed", component="kernel").value == 8
    assert sim.metrics.get("sim.events_cancelled", component="kernel").value == 2


# ---------------------------------------------------------------------------
# naive/cached equivalence on a full Prime cluster
# ---------------------------------------------------------------------------
def _trace_prime_run(seed: int):
    sim = Simulator(seed=seed)
    cluster = build_cluster(sim, f=1, k=1)
    client = cluster.add_client("load")
    for i in range(20):
        sim.schedule(0.5 + i * 0.05, client.submit, {"set": (f"k{i}", i)})
    sim.run(until=4.0)
    witness = hashlib.sha256()
    for app in cluster.correct_apps():
        witness.update(repr(app.oplog).encode())
    return sim.events_executed, sim.now, witness.hexdigest()


def test_same_seed_trace_equivalence_cached_vs_naive():
    """Caching must not change one event of the simulation: identical
    event counts, final time, and ordered-update digests."""
    set_cache_enabled(False)
    naive = _trace_prime_run(seed=42)
    set_cache_enabled(True)
    cached = _trace_prime_run(seed=42)
    assert naive == cached
