"""Detection scorecard: alert attribution, campaign integration,
live-MANA snapshot survival, and report rendering."""

import json

import pytest

from repro.faults import BUILTIN_SCENARIOS, report_digest, run_campaign
from repro.faults.campaign import _build_harness_cell
from repro.mana.alerts import Alert, AlertCorrelator, Incident
from repro.mana.scoring import score_alerts
from repro.obs.scorecard import (
    build_detection_section, detection_rates, quantile,
)


# ----------------------------------------------------------------------
# Pure attribution math
# ----------------------------------------------------------------------
def test_score_alerts_attribution():
    windows = [
        {"fault_id": "p:0:crash", "kind": "crash", "start": 2.0, "end": 4.0},
        {"fault_id": "p:1:partition", "kind": "partition",
         "start": 10.0, "end": 12.0},
    ]
    # 2.5 inside the first window, 5.5 inside its grace tail, 8.0 in
    # clean air; nothing ever lands on the second window.
    alerts = [{"time": 2.5}, {"time": 5.5}, {"time": 8.0}]
    result = score_alerts(windows, alerts, until=20.0, grace=2.0)
    assert result["true_positives"] == 2
    assert result["false_positives"] == 1
    assert result["detected"] == 1
    assert result["missed"] == ["p:1:partition"]
    assert result["windows"][0]["time_to_detect"] == 0.5
    assert result["windows"][1]["detected"] is False
    # clean time excludes both grace-extended spans: [2,6] and [10,14]
    assert result["clean_seconds"] == pytest.approx(12.0)


def test_score_alerts_overlapping_windows_counts_each_alert_once():
    windows = [
        {"fault_id": "a", "kind": "crash", "start": 1.0, "end": 5.0},
        {"fault_id": "b", "kind": "partition", "start": 3.0, "end": 7.0},
    ]
    result = score_alerts(windows, [{"time": 4.0}], until=10.0, grace=0.0)
    # One alert detects both windows but is a single true positive.
    assert result["true_positives"] == 1
    assert result["false_positives"] == 0
    assert result["detected"] == 2
    # Overlapping spans never double-count clean-time coverage.
    assert result["clean_seconds"] == pytest.approx(4.0)


def test_score_alerts_no_windows_all_false_positives():
    result = score_alerts([], [{"time": 1.0}, {"time": 2.0}], until=10.0)
    assert result["true_positives"] == 0
    assert result["false_positives"] == 2
    assert result["clean_seconds"] == pytest.approx(10.0)


def test_quantile_nearest_rank():
    assert quantile([], 0.5) is None
    assert quantile([3.0], 0.9) == 3.0
    values = [1.0, 2.0, 3.0, 4.0]
    assert quantile(values, 0.50) == 2.0
    assert quantile(values, 0.90) == 4.0


def test_detection_rates_undefined_cases():
    rates = detection_rates(0, 0, 0, 0, 0.0, [])
    assert rates["precision"] is None
    assert rates["recall"] is None
    assert rates["fpr_per_clean_hour"] is None
    assert rates["mttd_p50"] is None
    rates = detection_rates(3, 1, 4, 3, 3600.0, [0.4, 0.5, 0.6])
    assert rates["precision"] == pytest.approx(0.75)
    assert rates["recall"] == pytest.approx(0.75)
    assert rates["fpr_per_clean_hour"] == pytest.approx(1.0)
    assert rates["mttd_p50"] == 0.5


# ----------------------------------------------------------------------
# Alert / Incident serialization (deterministic JSON)
# ----------------------------------------------------------------------
def test_alert_and_incident_to_dict_round_trip_json():
    np = pytest.importorskip("numpy")
    alert = Alert(time=np.float64(3.5), network="lan-a",
                  score=np.float64(2.25),
                  models_flagging=("kmeans", "mahalanobis"),
                  top_features=(("packet_count", np.float64(4.0)),))
    payload = alert.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["score"] == 2.25
    assert payload["models_flagging"] == ["kmeans", "mahalanobis"]

    correlator = AlertCorrelator(gap=5.0)
    incident = correlator.add(alert)
    assert isinstance(incident, Incident)
    doc = incident.to_dict()
    assert json.loads(json.dumps(doc)) == doc
    assert doc["alerts"][0] == payload
    assert doc["peak_score"] == 2.25


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
def test_mana_campaign_scores_and_is_byte_identical():
    kwargs = dict(scenarios=["partition"], seeds=[2], mana=True,
                  duration=8.0)
    warm = run_campaign(**kwargs)
    cold = run_campaign(**kwargs, warm_cache=False)
    fanned = run_campaign(**kwargs, jobs=2)
    assert report_digest(warm) == report_digest(cold) == report_digest(fanned)

    detection = warm["detection"]
    assert detection is not None
    totals = detection["campaign"]
    assert totals["window_count"] > 0
    assert set(totals) >= {"precision", "recall", "fpr_per_clean_hour",
                           "mttd_p50", "mttd_p90", "true_positives",
                           "false_positives"}
    run = warm["scenarios"]["partition"]["runs"][0]
    assert run["detection"]["networks"]          # per-network stats present
    for alert in run["detection"]["sample_alerts"]:
        assert json.loads(json.dumps(alert)) == alert


def test_mana_ground_truth_windows_from_armed_plan():
    report = run_campaign(scenarios=["partition"], seeds=[1], mana=True,
                          duration=8.0)
    detection = report["scenarios"]["partition"]["runs"][0]["detection"]
    # Within 8 s the partition plan fires only its first action.
    assert detection["window_count"] == 1
    window = detection["windows"][0]
    assert window["kind"] == "partition"
    assert window["fault_id"].startswith("partition:")
    assert window["start"] == pytest.approx(3.0)


def test_campaign_without_mana_has_no_detection():
    report = run_campaign(scenarios=["baseline"], seeds=[1], duration=6.0)
    assert "detection" not in report
    assert report["config"]["mana"] is False
    for run in report["scenarios"]["baseline"]["runs"]:
        assert "detection" not in run


def test_missed_detection_produces_recorder_dump():
    # Synthetic attribution path: verify the report section aggregates
    # misses; the dump trigger itself is covered by the scoring dict
    # contract (missed -> mana.missed_detection dump in _finish_run).
    campaign = {"scenarios": {"s": {"runs": [{"detection": {
        "window_count": 2, "detected": 1, "missed": ["s:1:crash"],
        "true_positives": 3, "false_positives": 1, "alert_count": 4,
        "incidents": 2, "clean_seconds": 7200.0, "ttd": [0.5],
        "grace": 2.0,
    }}]}}}
    section = build_detection_section(campaign)
    assert section["campaign"]["missed"] == 1
    assert section["campaign"]["fpr_per_clean_hour"] == pytest.approx(0.5)
    assert section["scenarios"]["s"]["recall"] == pytest.approx(0.5)


def test_build_detection_section_none_without_detection():
    assert build_detection_section({"scenarios": {
        "s": {"runs": [{"passed": True}]}}}) is None


# ----------------------------------------------------------------------
# Live MANA across snapshot save/restore (satellite: scorecard state
# participates in the warm-start snapshot)
# ----------------------------------------------------------------------
def test_live_mana_survives_snapshot_roundtrip():
    from repro.snapshot import restore_world_bytes, save_world_bytes

    cell = _build_harness_cell(seed=5, f=1, k=1, harness={},
                               run_for=12.0, arm_at=3.0, mana=True)
    assert cell.mana and all(inst.trained for inst in cell.mana.values())
    assert all(inst._live_timer is not None for inst in cell.mana.values())
    image = save_world_bytes(cell)

    # Uninterrupted continuation.
    plan = BUILTIN_SCENARIOS["partition"].build(1, 1)
    plan.arm(cell.sim, cell.world)
    cell.sim.run(until=12.0)
    baseline = {network: [alert.to_dict() for alert in instance.alerts]
                for network, instance in cell.mana.items()}
    assert sum(len(alerts) for alerts in baseline.values()) > 0
    baseline_digest = cell.sim.event_digest()

    # Restored copy follows the identical schedule.
    restored = restore_world_bytes(image)
    assert restored.sim.now == pytest.approx(3.0)
    plan2 = BUILTIN_SCENARIOS["partition"].build(1, 1)
    plan2.arm(restored.sim, restored.world)
    restored.sim.run(until=12.0)
    replayed = {network: [alert.to_dict() for alert in instance.alerts]
                for network, instance in restored.mana.items()}
    assert replayed == baseline
    assert restored.sim.event_digest() == baseline_digest


# ----------------------------------------------------------------------
# HealthBoard: incident bursts mark the network suspect
# ----------------------------------------------------------------------
def test_health_board_marks_network_suspect_on_mana_burst():
    from repro.obs import HealthBoard
    from repro.sim.process import Process
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=None, mana_burst=3,
                        mana_burst_window=10.0)
    emitter = Process(sim, "mana-test")
    emitter.log("mana.alert", "anomaly", network="lan-a", score=2.0)
    emitter.log("mana.alert", "anomaly", network="lan-a", score=2.1)
    assert board.state_of("lan-a") == "healthy"
    emitter.log("mana.alert", "anomaly", network="lan-a", score=2.2)
    assert board.state_of("lan-a") == "suspect"
    assert board.components["lan-a"].kind == "network"
    # Alerts without a network tag (or on other networks) do nothing.
    emitter.log("mana.alert", "anomaly", score=9.9)
    assert board.state_of("lan-b") == "healthy"


def test_ground_truth_windows_skip_denied_actions():
    report = run_campaign(scenarios=["recovery-breach"], seeds=[1],
                          mana=True, duration=8.0)
    detection = report["scenarios"]["recovery-breach"]["runs"][0]["detection"]
    faults = report["scenarios"]["recovery-breach"]["runs"][0]["faults"]
    denied = [a for a in faults["actions"] if a["denied"]]
    fired = [a for a in faults["actions"]
             if not a["denied"] and a["injected_at"] is not None]
    assert detection["window_count"] == len(fired)
    for window in detection["windows"]:
        assert window["fault_id"] not in {a["fault_id"] for a in denied}
