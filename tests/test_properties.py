"""Property-based tests (hypothesis) for core data structures and
protocol invariants."""


from hypothesis import given, settings, strategies as st

from repro.crypto import (
    KeyStore, canonical_bytes, digest, mac_payload, seal, sign_payload,
    verify_mac, verify_signature,
)
from repro.mana.features import FEATURE_NAMES, FeatureExtractor
from repro.net.arp import ArpTable
from repro.net.firewall import Firewall, FirewallRule, INBOUND, OUTBOUND
from repro.net.tap import PacketRecord
from repro.plc.topology import PowerTopology
from repro.prime.config import PrimeConfig, replicas_required
from repro.api import Simulator


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------
json_like = st.recursive(
    st.none() | st.booleans() | st.integers(-2**40, 2**40)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=20) | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12)


@given(json_like)
def test_canonical_bytes_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)


@given(json_like, json_like)
def test_canonical_bytes_injective_on_digests(a, b):
    # Different values -> different encodings (collision would mean the
    # signature layer can be confused).
    if canonical_bytes(a) == canonical_bytes(b):
        assert a == b or (a == b)  # only equal values may collide
    else:
        assert digest(a) != digest(b) or canonical_bytes(a) != canonical_bytes(b)


@given(st.dictionaries(st.text(min_size=1, max_size=6),
                       st.integers(-100, 100), min_size=1, max_size=6))
def test_canonical_bytes_dict_order_invariant(d):
    items = list(d.items())
    reversed_dict = dict(reversed(items))
    assert canonical_bytes(d) == canonical_bytes(reversed_dict)


# ---------------------------------------------------------------------------
# Crypto layer
# ---------------------------------------------------------------------------
@given(json_like)
@settings(max_examples=30)
def test_mac_roundtrip_any_payload(payload):
    ks = KeyStore()
    ks.create_symmetric("k")
    ring = ks.ring_for(symmetric_ids=["k"])
    mac = mac_payload(ring, "k", payload)
    assert verify_mac(ring, mac, payload)


@given(json_like, json_like)
@settings(max_examples=30)
def test_mac_tamper_detection(payload, other):
    ks = KeyStore()
    ks.create_symmetric("k")
    ring = ks.ring_for(symmetric_ids=["k"])
    mac = mac_payload(ring, "k", payload)
    if canonical_bytes(payload) != canonical_bytes(other):
        assert not verify_mac(ring, mac, other)


@given(json_like)
@settings(max_examples=30)
def test_signature_roundtrip_any_payload(payload):
    ks = KeyStore()
    ks.create_signing("alice")
    signer = ks.ring_for(signing_principals=["alice"])
    verifier = ks.ring_for()
    sig = sign_payload(signer, "alice", payload)
    assert verify_signature(verifier, sig, payload)


@given(json_like)
@settings(max_examples=30)
def test_seal_roundtrip_any_payload(payload):
    ks = KeyStore()
    ks.create_symmetric("k")
    ring = ks.ring_for(symmetric_ids=["k"])
    assert seal(ring, "k", payload).open(ring) == payload


# ---------------------------------------------------------------------------
# Simulator ordering
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=40))
def test_simulator_executes_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# ARP table
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.sampled_from(["10.0.0.1", "10.0.0.2"]),
                          st.sampled_from(["m1", "m2", "m3"])),
                max_size=20))
def test_static_arp_entries_never_change(updates):
    table = ArpTable(static_mode=False)
    table.add_static("10.0.0.1", "real-mac")
    for i, (ip, mac) in enumerate(updates):
        table.learn(ip, mac, now=float(i))
    assert table.lookup("10.0.0.1", now=999.0) == "real-mac"


@given(st.lists(st.tuples(st.sampled_from(["10.0.0.1", "10.0.0.2"]),
                          st.sampled_from(["m1", "m2"])), max_size=20))
def test_static_mode_rejects_all_learning(updates):
    table = ArpTable(static_mode=True)
    for i, (ip, mac) in enumerate(updates):
        assert not table.learn(ip, mac, now=float(i))
    assert table.entries() == {}


# ---------------------------------------------------------------------------
# Firewall semantics
# ---------------------------------------------------------------------------
rule_strategy = st.builds(
    FirewallRule,
    action=st.sampled_from(["allow", "deny"]),
    direction=st.sampled_from([INBOUND, OUTBOUND]),
    proto=st.sampled_from([None, "udp", "tcp"]),
    remote_ip=st.sampled_from([None, "10.0.0.1", "10.0.0.2"]),
    local_port=st.sampled_from([None, 80, 8100]),
    remote_port=st.sampled_from([None, 80, 8100]))


@given(st.lists(rule_strategy, max_size=8),
       st.sampled_from([INBOUND, OUTBOUND]),
       st.sampled_from(["udp", "tcp"]),
       st.sampled_from(["10.0.0.1", "10.0.0.2"]),
       st.sampled_from([80, 8100]), st.sampled_from([80, 8100]),
       st.booleans())
def test_firewall_first_match_wins(rules, direction, proto, ip, lport,
                                   rport, default_allow):
    fw = Firewall(default_allow=default_allow)
    fw.rules = list(rules)
    expected = default_allow
    for rule in rules:
        if rule.matches(direction, proto, ip, lport, rport):
            expected = rule.action == "allow"
            break
    assert fw.permits(direction, proto, ip, lport, rport) == expected


# ---------------------------------------------------------------------------
# Power topology monotonicity
# ---------------------------------------------------------------------------
@st.composite
def topologies(draw):
    n_buses = draw(st.integers(2, 6))
    topo = PowerTopology("prop")
    buses = [f"b{i}" for i in range(n_buses)]
    topo.add_bus(buses[0], source=True)
    for bus in buses[1:]:
        topo.add_bus(bus)
    n_breakers = draw(st.integers(1, 8))
    for i in range(n_breakers):
        a = draw(st.sampled_from(buses))
        b = draw(st.sampled_from(buses))
        if a == b:
            continue
        closed = draw(st.booleans())
        topo.add_breaker(f"k{i}", a, b, closed=closed)
    topo.add_load("load", buses[-1])
    return topo


@given(topologies())
def test_closing_breakers_never_deenergizes(topo):
    before = topo.energized_buses()
    for name in topo.breaker_names():
        topo.set_breaker(name, True)
    after = topo.energized_buses()
    assert before <= after


@given(topologies())
def test_opening_all_breakers_leaves_only_sources(topo):
    for name in topo.breaker_names():
        topo.set_breaker(name, False)
    assert topo.energized_buses() == topo.sources


@given(topologies())
def test_sources_always_energized(topo):
    assert topo.sources <= topo.energized_buses()


# ---------------------------------------------------------------------------
# Feature extraction invariants
# ---------------------------------------------------------------------------
records_strategy = st.lists(
    st.builds(
        PacketRecord,
        time=st.floats(0.0, 4.99, allow_nan=False),
        network=st.just("t"),
        ethertype=st.sampled_from(["ipv4", "arp"]),
        src_mac=st.sampled_from(["m1", "m2", "m3"]),
        dst_mac=st.sampled_from(["m1", "ff:ff:ff:ff:ff:ff"]),
        size=st.integers(40, 1500),
        src_ip=st.sampled_from([None, "10.0.0.1"]),
        dst_ip=st.sampled_from([None, "10.0.0.2"]),
        proto=st.sampled_from([None, "udp", "tcp"]),
        src_port=st.just(1), dst_port=st.sampled_from([None, 80, 502]),
        tcp_flags=st.sampled_from([None, "syn", "rst", ""]),
        is_arp=st.booleans(),
        arp_op=st.sampled_from([None, "request", "reply"])),
    max_size=30)


@given(records_strategy)
def test_feature_vector_invariants(records):
    window = FeatureExtractor(window=5.0).featurize_window(records, 0.0, "t")
    named = window.named()
    assert window.vector.shape == (len(FEATURE_NAMES),)
    assert (window.vector >= 0).all()
    assert named["packets"] == len(records)
    assert 0.0 <= named["broadcast_fraction"] <= 1.0
    assert 0.0 <= named["udp_fraction"] <= 1.0
    assert 0.0 <= named["max_talker_fraction"] <= 1.0
    assert named["arp_replies"] <= named["arp_packets"]
    if records:
        assert named["bytes"] >= named["packets"] * 40


# ---------------------------------------------------------------------------
# Prime configuration invariants
# ---------------------------------------------------------------------------
@given(st.integers(0, 4), st.integers(0, 4))
def test_quorum_intersection_contains_a_correct_replica(f, k):
    n = replicas_required(f, k)
    if n < 1:
        return
    config = PrimeConfig(f=f, k=k,
                         replica_names=[f"r{i}" for i in range(n)])
    # Two quorums intersect in at least f+1 replicas -> at least one
    # correct even with f faulty: the PBFT-style safety core.
    assert 2 * config.quorum - config.n >= f + 1
    # Quorums remain available with f faulty + k recovering.
    assert config.n - f - k >= config.quorum


@given(st.integers(0, 4), st.integers(0, 4), st.integers(0, 30))
def test_leader_rotation_covers_all_replicas(f, k, view):
    n = replicas_required(f, k)
    config = PrimeConfig(f=f, k=k,
                         replica_names=[f"r{i}" for i in range(n)])
    leaders = {config.leader_of(v) for v in range(view, view + n)}
    assert leaders == set(config.replica_names)
