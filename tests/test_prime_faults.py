"""Prime under faults and attacks: crashes, malicious leaders, view
changes, proactive recovery, and state transfer."""

from repro.prime import STATE_NORMAL, STATE_RECOVERING


def test_tolerates_one_crashed_replica(cluster):
    cluster.replica(3).crash()
    client = cluster.add_client("hmi")
    for i in range(5):
        client.submit({"set": (f"k{i}", i)})
    cluster.sim.run(until=3.0)
    for name, rep in cluster.replicas.items():
        if rep.running:
            assert len(cluster.apps[name].oplog) == 5


def test_tolerates_f_crashes_plus_k_recovering(cluster):
    """6 replicas, f=1 crashed + 1 down for recovery: 4 = quorum remain."""
    cluster.replica(4).crash()
    cluster.replica(5).crash()
    client = cluster.add_client("hmi")
    client.submit({"set": ("still", "alive")})
    cluster.sim.run(until=3.0)
    for i in range(4):
        assert cluster.app(i).store.get("still") == "alive"


def test_too_many_crashes_halt_progress(cluster):
    """Losing more than f+k replicas stops the ordering quorum."""
    for i in (3, 4, 5):
        cluster.replica(i).crash()
    client = cluster.add_client("hmi")
    client.submit({"set": ("nope", 1)})
    cluster.sim.run(until=4.0)
    for i in range(3):
        assert "nope" not in cluster.app(i).store


def test_crashed_leader_triggers_view_change(cluster):
    leader_name = cluster.config.leader_of(0)
    cluster.replicas[leader_name].crash()
    client = cluster.add_client("hmi")
    client.submit({"set": ("after-crash", 1)})
    cluster.sim.run(until=6.0)
    for name, rep in cluster.replicas.items():
        if rep.running:
            assert cluster.apps[name].store.get("after-crash") == 1
            assert rep.view >= 1


def test_mute_leader_bounded_delay(cluster):
    """A leader that acks but never proposes is rotated out; updates
    still execute within the suspect timeout plus a round."""
    leader_name = cluster.config.leader_of(0)
    cluster.replicas[leader_name].byzantine = "mute-leader"
    client = cluster.add_client("hmi")
    submit_time = 0.5
    cluster.sim.schedule(submit_time, client.submit, {"set": ("delayed", 1)})
    cluster.sim.run(until=8.0)
    correct = [rep for name, rep in cluster.replicas.items()
               if name != leader_name]
    assert all(rep.view >= 1 for rep in correct)
    for name in cluster.replicas:
        if name != leader_name:
            assert cluster.apps[name].store.get("delayed") == 1
    # Bounded delay: suspect_timeout (1s) + view change + ordering round.
    seq = 1
    assert client.confirm_latency[seq] < 3.0


def test_censoring_leader_detected_and_rotated(cluster):
    """A leader zeroing one replica's PO-ARU column in its proposals is
    suspected by all correct replicas via certified-but-unexecuted age."""
    leader_name = cluster.config.leader_of(0)
    target = cluster.config.replica_names[2]
    leader = cluster.replicas[leader_name]
    leader.byzantine = "censor-matrix"
    leader.censor_originators = {target}
    client = cluster.add_client("hmi")
    # Force introductions through the censored replica only: submit
    # directly to it rather than broadcasting.
    update_op = {"set": ("censored", 1)}
    client.submit(update_op)
    cluster.sim.run(until=8.0)
    # The update ultimately executes (other replicas also introduced it,
    # or the view change unblocked the column).
    for name in cluster.replicas:
        if name != leader_name:
            assert cluster.apps[name].store.get("censored") == 1
    assert any(rep.view >= 1 for name, rep in cluster.replicas.items()
               if name != leader_name)


def test_slow_leader_rotated_for_performance(cluster):
    """Prime's signature property: a correct-but-too-slow (or
    maliciously slow) leader is replaced, keeping latency bounded."""
    leader_name = cluster.config.leader_of(0)
    leader = cluster.replicas[leader_name]
    leader.byzantine = "slow-leader"
    leader.byzantine_delay = 5.0          # proposes every 5s >> timeout
    client = cluster.add_client("hmi")
    cluster.sim.schedule(0.5, client.submit, {"set": ("slow", 1)})
    cluster.sim.run(until=8.0)
    correct = [rep for name, rep in cluster.replicas.items()
               if name != leader_name]
    assert all(rep.view >= 1 for rep in correct)
    assert client.confirm_latency.get(1, 99.0) < 3.0


def test_proactive_recovery_state_transfer(cluster):
    client = cluster.add_client("hmi")
    for i in range(5):
        client.submit({"set": (f"pre{i}", i)})
    cluster.sim.run(until=2.0)
    victim = cluster.replica(2)
    victim.crash()
    cluster.sim.run(until=2.5)
    victim.recover()
    cluster.sim.run(until=5.0)
    assert victim.state == STATE_NORMAL
    assert victim.epoch == 1
    app = cluster.app(2)
    for i in range(5):
        assert app.store.get(f"pre{i}") == i
    assert "started" in app.transfer_signals
    assert "completed" in app.transfer_signals


def test_recovered_replica_processes_new_updates(cluster):
    client = cluster.add_client("hmi")
    client.submit({"set": ("old", 1)})
    cluster.sim.run(until=2.0)
    victim = cluster.replica(1)
    victim.crash()
    cluster.sim.run(until=3.0)
    victim.recover()
    cluster.sim.run(until=5.0)
    client.submit({"set": ("new", 2)})
    cluster.sim.run(until=8.0)
    app = cluster.app(1)
    assert app.store.get("old") == 1
    assert app.store.get("new") == 2
    # And the recovered replica can introduce updates under its new
    # incarnation (epoch 1).
    assert victim.originator_id.endswith("#1")


def test_updates_during_recovery_are_not_lost(cluster):
    client = cluster.add_client("hmi")
    victim = cluster.replica(0)
    victim.crash()
    for i in range(3):
        cluster.sim.schedule(0.5 + i * 0.1, client.submit,
                             {"set": (f"during{i}", i)})
    cluster.sim.schedule(1.5, victim.recover)
    cluster.sim.run(until=6.0)
    app = cluster.app(0)
    for i in range(3):
        assert app.store.get(f"during{i}") == i


def test_sequential_proactive_recovery_of_all_replicas(cluster):
    """The deployed pattern: every replica is periodically rejuvenated,
    one at a time, with continuous availability."""
    client = cluster.add_client("hmi")
    tick = {"n": 0}

    def feed():
        tick["n"] += 1
        client.submit({"set": (f"feed{tick['n']}", tick["n"])})

    feeder = cluster.sim.every(0.5, feed)
    for index in range(6):
        start = 1.0 + index * 2.0
        victim = cluster.replica(index)
        cluster.sim.schedule(start, victim.crash)
        cluster.sim.schedule(start + 0.8, victim.recover)
    cluster.sim.schedule(13.2, feeder.stop)
    cluster.sim.run(until=15.0)
    for name, rep in cluster.replicas.items():
        assert rep.state == STATE_NORMAL
        assert rep.epoch == 1
    # All correct replicas converge on the same final store.
    stores = [tuple(sorted(app.store.items())) for app in cluster.apps.values()]
    assert len(set(stores)) == 1
    assert len(cluster.app(0).store) == tick["n"]


def test_recovery_blocked_without_enough_donors(cluster):
    """With quorum lost, a recovering replica keeps signalling
    'retrying' — the assumption-breach case (Section III-A)."""
    for i in (2, 3, 4, 5):
        cluster.replica(i).crash()
    victim = cluster.replica(0)
    victim.crash()
    cluster.sim.run(until=1.0)
    victim.recover()
    cluster.sim.run(until=4.0)
    assert victim.state == STATE_RECOVERING
    assert cluster.app(0).transfer_signals.count("retrying") >= 2


def test_consistency_across_view_changes_under_load(cluster):
    """Updates submitted while the leader crashes mid-stream are
    executed consistently (no divergence, no loss)."""
    client = cluster.add_client("hmi")
    for i in range(20):
        cluster.sim.schedule(0.1 * i, client.submit, {"set": (f"v{i}", i)})
    leader_name = cluster.config.leader_of(0)
    cluster.sim.schedule(0.55, cluster.replicas[leader_name].crash)
    cluster.sim.run(until=10.0)
    logs = [tuple(cluster.apps[name].oplog)
            for name, rep in cluster.replicas.items() if rep.running]
    assert len(set(logs)) == 1
    assert len(logs[0]) == 20


def test_single_censoring_replica_cannot_block_client(cluster):
    """One replica refusing to introduce a client's updates is harmless:
    every other replica also introduces them."""
    censor = cluster.replica(2)
    censor.byzantine = "censor"
    censor.censor_clients = {"hmi"}
    client = cluster.add_client("hmi")
    for i in range(3):
        client.submit({"set": (f"c{i}", i)})
    cluster.sim.run(until=3.0)
    for name, rep in cluster.replicas.items():
        app = cluster.apps[name]
        for i in range(3):
            assert app.store.get(f"c{i}") == i
    # No view change was needed for this.
    assert all(rep.view == 0 for rep in cluster.replicas.values())


def test_client_latency_includes_retransmission_after_total_blackout(cluster):
    """A short full-network blackout delays but does not lose updates
    (client retransmission + Prime dedup)."""
    client = cluster.add_client("hmi")
    links = [cluster.internal_lan.link_of(
        cluster.replica(i).internal_daemon.host) for i in range(6)]
    client.submit({"set": ("survivor", 1)})
    for link in links:
        link.set_up(False)
    cluster.sim.schedule(1.5, lambda: [link.set_up(True) for link in links])
    cluster.sim.run(until=10.0)
    for app in cluster.apps.values():
        assert app.store.get("survivor") == 1
