"""Tests for the HMI topology rendering."""

from repro.plc import redteam_topology
from repro.scada.visualization import HmiScreen, render_hmi


def test_render_all_closed_lights_all_buildings():
    screen = HmiScreen(redteam_topology())
    output = screen.render()
    assert output.count("LIT ") == 4
    assert "DARK" not in output
    assert "B10-1" in output and "B57" in output


def test_render_reflects_given_states_not_ground_truth():
    topo = redteam_topology()
    screen = HmiScreen(topo)
    states = topo.breaker_states()
    states["B10-1"] = False           # displayed view says main is open
    output = screen.render(breaker_states=states)
    assert output.count("DARK") == 4  # everything dark in the display
    assert topo.get_breaker("B10-1") is True   # ground truth untouched


def test_render_unknown_states():
    topo = redteam_topology()
    screen = HmiScreen(topo)
    output = screen.render(breaker_states={})
    assert "[?]" in output
    assert "unknown" in output


def test_indicator_box():
    screen = HmiScreen(redteam_topology())
    white = screen.render_indicator_box("B57", True)
    black = screen.render_indicator_box("B57", False)
    assert "WHITE" in white and "#" in white
    assert "BLACK" in black and "." in black
    assert screen.render_indicator_box("B57", None) == "???"


def test_render_hmi_integration(spire_pair):
    sim, system = spire_pair
    hmi = system.hmis[0]
    from repro.mana import SituationalAwarenessBoard
    board = SituationalAwarenessBoard()
    board.set_quiet("ops-spire")
    output = render_hmi(hmi, system.physical_plc.topology, "plc-physical",
                        board=board)
    assert "B57" in output
    assert "[MANA] ops-spire:normal" in output
    assert "closed" in output


import pytest


@pytest.fixture(scope="module")
def spire_pair():
    from repro.api import GridSpec, Simulator, build_spire
    sim = Simulator(seed=71)
    system = build_spire(sim, GridSpec.single_plant(n_distribution_plcs=0,
                                           n_generation_plcs=0, n_hmis=1).spire_config())
    sim.run(until=4.0)
    return sim, system
