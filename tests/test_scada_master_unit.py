"""Unit tests for the SCADA master application state machine (no
network — ops applied directly, pushes captured via a stub replica)."""

import pytest

from repro.prime.messages import ClientUpdate
from repro.scada.events import (
    CommandDirective, HmiFeed, breaker_command_op, plc_status_op,
    register_hmi_op, register_proxy_op,
)
from repro.scada.master import ScadaMaster


class StubSession:
    def __init__(self):
        self.sent = []

    def send(self, dst, payload, service=None):
        self.sent.append((dst, payload))
        return True


class StubReplica:
    def __init__(self):
        self.external_session = StubSession()
        self.running = True


@pytest.fixture
def master():
    m = ScadaMaster("replica1")
    m.bind(StubReplica())
    return m


def update_with(op, client="proxy-1", seq=1):
    return ClientUpdate(client_id=client, client_seq=seq, op=op)


def test_status_update_sets_state(master):
    result = master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True, "B2": False},
                      {"B1": 100, "B2": 0})))
    assert result == {"status": "ok", "plc": "plc1"}
    assert master.plc_state["plc1"] == {"B1": True, "B2": False}
    assert master.plc_currents["plc1"]["B1"] == 100
    assert master.version == 1


def test_version_increases_per_update(master):
    for seq in range(1, 4):
        master.execute_update(update_with(
            plc_status_op("plc1", {"B1": bool(seq % 2)}, {}), seq=seq))
    assert master.version == 3


def test_register_hmi_triggers_immediate_feed(master):
    master.execute_update(update_with(register_hmi_op(("ext.hmi", 7800))))
    sent = master.replica.external_session.sent
    assert any(isinstance(p, HmiFeed) for _, p in sent)
    assert ("ext.hmi", 7800) in master.hmis


def test_status_change_pushes_feed_to_all_hmis(master):
    master.execute_update(update_with(register_hmi_op(("h1", 1)), seq=1))
    master.execute_update(update_with(register_hmi_op(("h2", 2)), seq=2))
    master.replica.external_session.sent.clear()
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=3))
    targets = [dst for dst, p in master.replica.external_session.sent
               if isinstance(p, HmiFeed)]
    assert ("h1", 1) in targets and ("h2", 2) in targets


def test_unchanged_status_does_not_push(master):
    master.execute_update(update_with(register_hmi_op(("h1", 1)), seq=1))
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=2))
    master.replica.external_session.sent.clear()
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=3))
    assert master.replica.external_session.sent == []


def test_command_requires_registered_proxy(master):
    result = master.execute_update(update_with(
        breaker_command_op("plc1", "B1", False)))
    assert result["status"] == "no-proxy"
    assert "no-proxy:plc1" in master.alarms


def test_command_emits_directive_to_proxy(master):
    master.execute_update(update_with(
        register_proxy_op(["plc1"], ("ext.proxy", 7600)), seq=1))
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=2))
    result = master.execute_update(update_with(
        breaker_command_op("plc1", "B1", False), client="hmi-1", seq=5))
    assert result["status"] == "commanded"
    directives = [p for dst, p in master.replica.external_session.sent
                  if isinstance(p, CommandDirective)]
    assert len(directives) == 1
    directive = directives[0]
    assert directive.command_id == ("hmi-1", 5)
    assert directive.breaker == "B1" and directive.close is False
    assert directive.replica == "replica1"


def test_command_for_unknown_breaker_rejected(master):
    master.execute_update(update_with(
        register_proxy_op(["plc1"], ("ext.proxy", 7600)), seq=1))
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=2))
    result = master.execute_update(update_with(
        breaker_command_op("plc1", "NOPE", False), seq=3))
    assert result["status"] == "unknown-breaker"


def test_malformed_ops_safe(master):
    assert master.execute_update(update_with("not-a-dict"))["status"] == \
        "bad-op"
    assert master.execute_update(update_with({"type": "???"}, seq=2)) == \
        {"status": "unknown-op"}


def test_snapshot_restore_roundtrip(master):
    master.execute_update(update_with(
        register_proxy_op(["plc1"], ("ext.proxy", 7600)), seq=1))
    master.execute_update(update_with(register_hmi_op(("h1", 1)), seq=2))
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {"B1": 100}), seq=3))
    snapshot = master.snapshot()

    clone = ScadaMaster("replica2")
    clone.restore(snapshot)
    assert clone.plc_state == master.plc_state
    assert clone.proxies == master.proxies
    assert clone.hmis == master.hmis
    assert clone.version == master.version
    # And the snapshot is canonically serializable (state transfer).
    from repro.crypto import canonical_bytes
    assert canonical_bytes(snapshot) == canonical_bytes(clone.snapshot())


def test_cold_reset_clears_view_keeps_addresses(master):
    master.execute_update(update_with(
        register_proxy_op(["plc1"], ("ext.proxy", 7600)), seq=1))
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=2))
    master.cold_reset(reset_epoch=3)
    assert master.plc_state == {}
    assert master.version == 0
    assert master.reset_epoch == 3
    assert master.proxies == {"plc1": ("ext.proxy", 7600)}


def test_pushes_suppressed_when_replica_down(master):
    master.execute_update(update_with(register_hmi_op(("h1", 1)), seq=1))
    master.replica.running = False
    master.replica.external_session.sent.clear()
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": False}, {}), seq=2))
    assert master.replica.external_session.sent == []


def test_system_view_is_a_copy(master):
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {})))
    view = master.system_view()
    view["plc1"]["B1"] = False
    assert master.plc_state["plc1"]["B1"] is True


def test_stale_plc_alarm_raised_and_cleared(master):
    master.stale_after_updates = 5
    master.execute_update(update_with(register_hmi_op(("h1", 1)), seq=1))
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=2))
    # Other activity without plc1 reporting.
    for seq in range(3, 10):
        master.execute_update(update_with(
            plc_status_op("plc2", {"X": bool(seq % 2)}, {}), seq=seq))
    assert "stale-plc:plc1" in master.alarms
    assert "stale-plc:plc2" not in master.alarms
    # Alarm travels on the feed.
    feeds = [p for _, p in master.replica.external_session.sent
             if isinstance(p, HmiFeed)]
    assert any("stale-plc:plc1" in f.alarms for f in feeds)
    # The PLC reports again: alarm clears.
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=10))
    assert "stale-plc:plc1" not in master.alarms


def test_stale_alarm_state_survives_snapshot(master):
    master.stale_after_updates = 3
    master.execute_update(update_with(
        plc_status_op("plc1", {"B1": True}, {}), seq=1))
    snapshot = master.snapshot()
    clone = ScadaMaster("replica2")
    clone.stale_after_updates = 3
    clone.restore(snapshot)
    assert clone.last_status_version == master.last_status_version
