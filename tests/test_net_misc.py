"""Additional network-substrate coverage: TCP lifecycle, packet
descriptions, scan reports, spines sessions."""

import pytest

from repro.net import (
    ArpMessage, BROADCAST_MAC, ETHERTYPE_ARP, Frame, Host, IpPacket, Lan,
    ScanReport, TcpSegment, UdpDatagram, describe, udp_frame,
)
from repro.api import Simulator


@pytest.fixture
def pair():
    sim = Simulator(seed=66)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    a = Host(sim, "a")
    b = Host(sim, "b")
    lan.connect(a)
    lan.connect(b)
    return sim, lan, a, b


# ---------------------------------------------------------------------------
# TCP lifecycle
# ---------------------------------------------------------------------------
def test_tcp_close_notifies_peer(pair):
    sim, lan, a, b = pair
    closed = []
    server_conns = []

    def on_connect(conn):
        server_conns.append(conn)
        conn.on_closed = lambda c: closed.append("server-side")

    b.tcp_listen(8080, on_connect)
    conns = {}
    a.tcp_connect(lan.ip_of(b), 8080, lambda c: conns.setdefault("c", c))
    sim.run(until=2.0)
    conns["c"].close()
    sim.run(until=3.0)
    assert closed == ["server-side"]
    assert conns["c"].closed


def test_send_on_closed_connection_fails(pair):
    sim, lan, a, b = pair
    b.tcp_listen(8080, lambda conn: None)
    conns = {}
    a.tcp_connect(lan.ip_of(b), 8080, lambda c: conns.setdefault("c", c))
    sim.run(until=2.0)
    conns["c"].close()
    assert conns["c"].send("too-late") is False


def test_listener_close_stops_new_connections(pair):
    sim, lan, a, b = pair
    b.tcp_listen(8080, lambda conn: None)
    b.tcp_close_listener(8080)
    failures = []
    a.tcp_connect(lan.ip_of(b), 8080, lambda c: pytest.fail("no"),
                  on_failure=failures.append)
    sim.run(until=3.0)
    assert failures == ["refused"]


def test_data_in_both_directions(pair):
    sim, lan, a, b = pair
    transcript = []

    def on_connect(conn):
        conn.on_data = lambda c, p: (transcript.append(("srv", p)),
                                     c.send(p * 2))

    b.tcp_listen(8080, on_connect)

    def established(conn):
        conn.send(1)
        conn.send(2)

    a.tcp_connect(lan.ip_of(b), 8080, established,
                  on_data=lambda c, p: transcript.append(("cli", p)))
    sim.run(until=2.0)
    assert ("srv", 1) in transcript and ("srv", 2) in transcript
    assert ("cli", 2) in transcript and ("cli", 4) in transcript


def test_duplicate_binds_rejected(pair):
    sim, lan, a, b = pair
    b.udp_bind(5000, lambda *args: None)
    with pytest.raises(RuntimeError):
        b.udp_bind(5000, lambda *args: None)
    b.tcp_listen(8080, lambda conn: None)
    with pytest.raises(RuntimeError):
        b.tcp_listen(8080, lambda conn: None)


def test_udp_unbind_stops_delivery(pair):
    sim, lan, a, b = pair
    got = []
    b.udp_bind(5000, lambda *args: got.append(args))
    a.udp_send(lan.ip_of(b), 5000, "one", src_port=1)
    sim.run(until=1.0)
    b.udp_unbind(5000)
    a.udp_send(lan.ip_of(b), 5000, "two", src_port=1)
    sim.run(until=2.0)
    assert len(got) == 1


# ---------------------------------------------------------------------------
# Packet descriptions (log/debug surface)
# ---------------------------------------------------------------------------
def test_describe_udp():
    frame = udp_frame("m1", "m2", "10.0.0.1", "10.0.0.2", 5, 6, "x" * 10)
    text = describe(frame)
    assert "UDP 10.0.0.1:5 -> 10.0.0.2:6" in text


def test_describe_tcp_and_arp():
    tcp = Frame(src_mac="m1", dst_mac="m2", ethertype="ipv4",
                payload=IpPacket(src_ip="1.1.1.1", dst_ip="2.2.2.2",
                                 proto="tcp",
                                 payload=TcpSegment(src_port=1, dst_port=2,
                                                    flags="syn")))
    assert "TCP[syn]" in describe(tcp)
    arp = Frame(src_mac="m1", dst_mac=BROADCAST_MAC,
                ethertype=ETHERTYPE_ARP,
                payload=ArpMessage(op="request", sender_mac="m1",
                                   sender_ip="1.1.1.1",
                                   target_mac="00:00:00:00:00:00",
                                   target_ip="2.2.2.2"))
    assert "ARP request" in describe(arp)


def test_frame_copy_gets_fresh_id():
    frame = udp_frame("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2, "p")
    clone = frame.copy()
    assert clone.frame_id != frame.frame_id
    assert clone.payload is frame.payload


def test_wire_sizes_monotone_in_payload():
    small = udp_frame("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2, "x")
    big = udp_frame("m1", "m2", "1.1.1.1", "2.2.2.2", 1, 2, "x" * 500)
    assert big.wire_size() > small.wire_size() >= 42


# ---------------------------------------------------------------------------
# Scan reports
# ---------------------------------------------------------------------------
def test_scan_report_classification():
    report = ScanReport(target_ip="1.1.1.1",
                        results={22: "open", 23: "closed", 80: "filtered"})
    assert report.open_ports == [22]
    assert report.closed_ports == [23]
    assert report.filtered_ports == [80]
    assert report.any_visibility


def test_scan_report_all_filtered_is_blind():
    report = ScanReport(target_ip="1.1.1.1",
                        results={p: "filtered" for p in (22, 80, 443)})
    assert not report.any_visibility


# ---------------------------------------------------------------------------
# Spines session lifecycle
# ---------------------------------------------------------------------------
def test_session_close_stops_delivery_and_send():
    from repro.crypto import KeyStore
    from repro.spines import SpinesNetwork
    sim = Simulator(seed=67)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    ks = KeyStore(sim.rng.child("k"))
    overlay = SpinesNetwork(sim, "s", lan, ks)
    hosts = [Host(sim, f"h{i}") for i in range(2)]
    for h in hosts:
        lan.connect(h)
        overlay.add_daemon(h)
    overlay.connect_full_mesh()
    names = sorted(overlay.daemons)
    got = []
    dst = overlay.daemons[names[1]].create_session(50,
                                                   lambda s, p: got.append(p))
    src = overlay.daemons[names[0]].create_session(51, lambda s, p: None)
    src.send((names[1], 50), "before")
    sim.run(until=1.0)
    dst.close()
    src.send((names[1], 50), "after")
    sim.run(until=2.0)
    assert got == ["before"]
    assert src.stats.sent == 2
    src.close()
    assert src.send((names[1], 50), "dead") is False


def test_duplicate_session_port_rejected():
    from repro.crypto import KeyStore
    from repro.spines import SpinesNetwork
    sim = Simulator(seed=68)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    overlay = SpinesNetwork(sim, "s", lan, KeyStore(sim.rng.child("k")))
    host = Host(sim, "h")
    lan.connect(host)
    daemon = overlay.add_daemon(host)
    daemon.create_session(50, lambda s, p: None)
    with pytest.raises(RuntimeError):
        daemon.create_session(50, lambda s, p: None)
