"""Telemetry unit tests: metrics semantics, quantiles, spans, and the
registry's export surface."""

import json

import pytest

from repro.api import (
    Counter, Gauge, Histogram, MetricsRegistry, Simulator, Tracer,
)


# ---------------------------------------------------------------------------
# Counter / Gauge
# ---------------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("events", component="kernel")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    a = registry.counter("x", component="c1")
    b = registry.counter("x", component="c1")
    c = registry.counter("x", component="c2")
    assert a is b
    assert a is not c


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("depth")
    with pytest.raises(TypeError):
        registry.gauge("depth")


def test_gauge_tracks_extremes():
    gauge = Gauge("queue")
    gauge.set(5)
    gauge.dec(3)
    gauge.inc(10)
    assert gauge.value == 12
    assert gauge.min_seen == 2
    assert gauge.max_seen == 12


# ---------------------------------------------------------------------------
# Histogram quantiles
# ---------------------------------------------------------------------------
def test_histogram_quantile_interpolates_even_length():
    hist = Histogram("lat")
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    # Nearest-rank would say 3; the linear method interpolates.
    assert hist.quantile(0.5) == pytest.approx(2.5)
    assert hist.quantile(0.0) == 1.0
    assert hist.quantile(1.0) == 4.0


def test_histogram_quantile_odd_length_is_median():
    hist = Histogram("lat")
    for value in [5.0, 1.0, 3.0]:
        hist.observe(value)
    assert hist.quantile(0.5) == 3.0


def test_histogram_summary_fields():
    hist = Histogram("lat")
    for value in range(1, 101):
        hist.observe(float(value))
    summary = hist.summary()
    assert summary["samples"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p90"] == pytest.approx(90.1)
    assert summary["p99"] == pytest.approx(99.01)
    assert hist.quantile(0.5) == summary["p50"]
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_sample_cap_keeps_exact_aggregates():
    hist = Histogram("lat", max_samples=10)
    for value in range(100):
        hist.observe(float(value))
    assert hist.count == 100           # aggregates stay exact
    assert hist.max == 99.0
    assert len(hist._values) == 10     # raw samples capped


# ---------------------------------------------------------------------------
# Registry queries and export
# ---------------------------------------------------------------------------
def test_find_prefix_respects_dotted_boundary():
    registry = MetricsRegistry()
    registry.counter("net.link.frames_sent", component="l1")
    registry.counter("net.linkage", component="l1")
    names = {m.name for m in registry.find(prefix="net.link")}
    assert names == {"net.link.frames_sent"}


def test_total_sums_across_components():
    registry = MetricsRegistry()
    registry.counter("polls", component="p1").inc(3)
    registry.counter("polls", component="p2").inc(4)
    assert registry.total("polls") == 7


def test_merged_histogram_combines_components():
    registry = MetricsRegistry()
    registry.histogram("lat", component="a").observe(1.0)
    registry.histogram("lat", component="b").observe(3.0)
    merged = registry.merged_histogram("lat")
    assert merged.count == 2
    assert merged.quantile(0.5) == pytest.approx(2.0)


def test_json_and_csv_export():
    registry = MetricsRegistry()
    registry.counter("c", component="x").inc()
    registry.histogram("h", component="y").observe(2.0)
    rows = json.loads(registry.to_json())
    assert {row["kind"] for row in rows} == {"counter", "histogram"}
    csv_text = registry.to_csv()
    header, *lines = csv_text.strip().splitlines()
    assert header.startswith("kind,name,component")
    assert len(lines) == 2


def test_registry_timestamps_use_simulated_clock():
    sim = Simulator(seed=1)
    counter = sim.metrics.counter("ticks", component="k")
    sim.schedule(2.5, counter.inc)
    sim.run()
    assert counter.updated_at == 2.5


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def test_span_parent_child_and_ids_deterministic():
    tracer = Tracer()
    root = tracer.start_span("root", component="a")
    child = tracer.record("child", component="b", parent=root.context())
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert root.trace_id == "t000001"      # counter-derived, reproducible
    assert tracer.span_names(root.trace_id) == ["root", "child"]


def test_retroactive_span_start():
    clock = {"now": 10.0}
    tracer = Tracer(clock=lambda: clock["now"])
    span = tracer.record("hop", start=4.0)
    assert span.start == 4.0
    assert span.end == 10.0
    assert span.duration == pytest.approx(6.0)


def test_disabled_tracer_stores_nothing():
    tracer = Tracer(enabled=False)
    span = tracer.start_span("x")
    assert span is not None            # call sites need no guard
    assert len(tracer) == 0


def test_hop_breakdown_collapses_replicated_hops():
    tracer = Tracer(clock=lambda: 0.0)
    root = tracer.start_span("cmd", start=0.0)
    for replica in ("r1", "r2", "r3"):
        span = tracer.start_span("order", component=replica,
                                 parent=root.context(), start=1.0)
        span.finish(2.0)
    breakdown = tracer.hop_breakdown(root.trace_id)
    hops = {hop["hop"]: hop for hop in breakdown}
    assert hops["order"]["spans"] == 3
    assert hops["order"]["offset"] == pytest.approx(1.0)
    assert hops["order"]["duration"] == pytest.approx(1.0)
    assert set(hops["order"]["components"]) == {"r1", "r2", "r3"}
    assert "order" in tracer.format_trace(root.trace_id)


def test_simulator_kernel_metrics():
    sim = Simulator(seed=3)
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event = sim.schedule(3.0, lambda: None)
    event.cancel()
    sim.run()
    assert sim.metrics.counter("sim.events_executed",
                               component="kernel").value == 2
    assert sim.metrics.counter("sim.events_cancelled",
                               component="kernel").value == 1


def test_simulator_telemetry_flag_disables_tracer():
    sim = Simulator(seed=3, telemetry=False)
    assert sim.tracer.enabled is False
    sim.tracer.record("x")
    assert len(sim.tracer) == 0


# ---------------------------------------------------------------------------
# Export round-trips and snapshot merging
# ---------------------------------------------------------------------------
def test_csv_round_trip_quotes_awkward_component_labels():
    """Component labels with commas and quotes must survive a CSV
    round-trip untouched (csv module quoting, not string joins)."""
    import csv
    import io

    registry = MetricsRegistry()
    registry.counter("plc.commands", component='plc "main", unit-1').inc(4)
    registry.gauge("breaker.state", component="bay,7").set(1.0)
    registry.histogram("latency", component='say "when"').observe(0.25)
    rows = list(csv.DictReader(io.StringIO(registry.to_csv())))
    assert {row["component"] for row in rows} == \
        {'plc "main", unit-1', "bay,7", 'say "when"'}
    by_name = {row["name"]: row for row in rows}
    assert by_name["plc.commands"]["value"] == "4"
    assert by_name["latency"]["count"] == "1"
    assert by_name["latency"]["p50"] == "0.25"


def test_csv_empty_histogram_has_blank_stat_columns():
    import csv
    import io

    registry = MetricsRegistry()
    registry.histogram("h.empty", component="quiet")
    row = next(csv.DictReader(io.StringIO(registry.to_csv())))
    assert row["kind"] == "histogram" and row["count"] == "0"
    # No samples -> no mean/quantiles, and the columns stay blank
    # rather than carrying 0.0 placeholders that would skew analysis.
    assert all(row[field] == "" for field in
               ("mean", "min", "max", "p50", "p90", "p99"))
    assert registry.merged_histogram("h.empty").summary() == {"samples": 0}


def test_json_round_trip_preserves_rows_and_sorts_keys():
    registry = MetricsRegistry()
    registry.counter("c", component="a,b").inc(2)
    registry.histogram("h.empty", component='plc "main"')
    rows = json.loads(registry.to_json())
    assert rows == registry.snapshot()
    empty = next(row for row in rows if row["kind"] == "histogram")
    assert empty["component"] == 'plc "main"' and empty["count"] == 0
    assert "p50" not in empty                   # empty: stats omitted
    text = registry.to_json()
    assert text.index('"component"') < text.index('"kind"')  # sorted keys


def test_merge_snapshot_of_recorder_periodic_snapshots():
    """The flight recorder's periodic metric snapshots ride on the same
    state_snapshot/merge_snapshot machinery the sweep engine uses: a
    fresh registry fed a worker's states reproduces exact pooled
    quantiles, counters add, and empty histograms stay empty."""
    from repro.obs import FlightRecorder

    sim = Simulator(seed=5)
    recorder = FlightRecorder(sim, snapshot_interval=1.0)
    histogram = sim.metrics.histogram("prime.confirm_latency",
                                      component="hmi1")
    for index in range(7):
        sim.schedule(0.3 * index, histogram.observe, 0.01 * (index + 1))
    sim.metrics.histogram("h.empty", component="quiet")
    sim.schedule(0.2, sim.metrics.counter("c", component="x").inc, 3)
    sim.run(until=3.5)

    merged = MetricsRegistry()
    merged.merge_snapshot(sim.metrics.state_snapshot())
    merged.merge_snapshot(sim.metrics.state_snapshot())  # second worker
    assert merged.counter("c", component="x").value == 6
    pooled = merged.merged_histogram("prime.confirm_latency")
    assert pooled.count == 14
    assert pooled.quantile(0.5) == \
        sim.metrics.merged_histogram("prime.confirm_latency").quantile(0.5)
    assert merged.merged_histogram("h.empty").summary() == {"samples": 0}
    # And the recorder actually captured the periodic snapshots the
    # report side replays.
    snapshots = [entry for entry in recorder.entries()
                 if entry["kind"] == "metrics"]
    assert len(snapshots) == 3
