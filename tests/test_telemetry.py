"""Telemetry unit tests: metrics semantics, quantiles, spans, and the
registry's export surface."""

import json

import pytest

from repro.api import (
    Counter, Gauge, Histogram, MetricsRegistry, Simulator, Tracer,
)


# ---------------------------------------------------------------------------
# Counter / Gauge
# ---------------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("events", component="kernel")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    a = registry.counter("x", component="c1")
    b = registry.counter("x", component="c1")
    c = registry.counter("x", component="c2")
    assert a is b
    assert a is not c


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("depth")
    with pytest.raises(TypeError):
        registry.gauge("depth")


def test_gauge_tracks_extremes():
    gauge = Gauge("queue")
    gauge.set(5)
    gauge.dec(3)
    gauge.inc(10)
    assert gauge.value == 12
    assert gauge.min_seen == 2
    assert gauge.max_seen == 12


# ---------------------------------------------------------------------------
# Histogram quantiles
# ---------------------------------------------------------------------------
def test_histogram_quantile_interpolates_even_length():
    hist = Histogram("lat")
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    # Nearest-rank would say 3; the linear method interpolates.
    assert hist.quantile(0.5) == pytest.approx(2.5)
    assert hist.quantile(0.0) == 1.0
    assert hist.quantile(1.0) == 4.0


def test_histogram_quantile_odd_length_is_median():
    hist = Histogram("lat")
    for value in [5.0, 1.0, 3.0]:
        hist.observe(value)
    assert hist.quantile(0.5) == 3.0


def test_histogram_summary_fields():
    hist = Histogram("lat")
    for value in range(1, 101):
        hist.observe(float(value))
    summary = hist.summary()
    assert summary["samples"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p90"] == pytest.approx(90.1)
    assert summary["p99"] == pytest.approx(99.01)
    assert hist.quantile(0.5) == summary["p50"]
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_sample_cap_keeps_exact_aggregates():
    hist = Histogram("lat", max_samples=10)
    for value in range(100):
        hist.observe(float(value))
    assert hist.count == 100           # aggregates stay exact
    assert hist.max == 99.0
    assert len(hist._values) == 10     # raw samples capped


# ---------------------------------------------------------------------------
# Registry queries and export
# ---------------------------------------------------------------------------
def test_find_prefix_respects_dotted_boundary():
    registry = MetricsRegistry()
    registry.counter("net.link.frames_sent", component="l1")
    registry.counter("net.linkage", component="l1")
    names = {m.name for m in registry.find(prefix="net.link")}
    assert names == {"net.link.frames_sent"}


def test_total_sums_across_components():
    registry = MetricsRegistry()
    registry.counter("polls", component="p1").inc(3)
    registry.counter("polls", component="p2").inc(4)
    assert registry.total("polls") == 7


def test_merged_histogram_combines_components():
    registry = MetricsRegistry()
    registry.histogram("lat", component="a").observe(1.0)
    registry.histogram("lat", component="b").observe(3.0)
    merged = registry.merged_histogram("lat")
    assert merged.count == 2
    assert merged.quantile(0.5) == pytest.approx(2.0)


def test_json_and_csv_export():
    registry = MetricsRegistry()
    registry.counter("c", component="x").inc()
    registry.histogram("h", component="y").observe(2.0)
    rows = json.loads(registry.to_json())
    assert {row["kind"] for row in rows} == {"counter", "histogram"}
    csv_text = registry.to_csv()
    header, *lines = csv_text.strip().splitlines()
    assert header.startswith("kind,name,component")
    assert len(lines) == 2


def test_registry_timestamps_use_simulated_clock():
    sim = Simulator(seed=1)
    counter = sim.metrics.counter("ticks", component="k")
    sim.schedule(2.5, counter.inc)
    sim.run()
    assert counter.updated_at == 2.5


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def test_span_parent_child_and_ids_deterministic():
    tracer = Tracer()
    root = tracer.start_span("root", component="a")
    child = tracer.record("child", component="b", parent=root.context())
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert root.trace_id == "t000001"      # counter-derived, reproducible
    assert tracer.span_names(root.trace_id) == ["root", "child"]


def test_retroactive_span_start():
    clock = {"now": 10.0}
    tracer = Tracer(clock=lambda: clock["now"])
    span = tracer.record("hop", start=4.0)
    assert span.start == 4.0
    assert span.end == 10.0
    assert span.duration == pytest.approx(6.0)


def test_disabled_tracer_stores_nothing():
    tracer = Tracer(enabled=False)
    span = tracer.start_span("x")
    assert span is not None            # call sites need no guard
    assert len(tracer) == 0


def test_hop_breakdown_collapses_replicated_hops():
    tracer = Tracer(clock=lambda: 0.0)
    root = tracer.start_span("cmd", start=0.0)
    for replica in ("r1", "r2", "r3"):
        span = tracer.start_span("order", component=replica,
                                 parent=root.context(), start=1.0)
        span.finish(2.0)
    breakdown = tracer.hop_breakdown(root.trace_id)
    hops = {hop["hop"]: hop for hop in breakdown}
    assert hops["order"]["spans"] == 3
    assert hops["order"]["offset"] == pytest.approx(1.0)
    assert hops["order"]["duration"] == pytest.approx(1.0)
    assert set(hops["order"]["components"]) == {"r1", "r2", "r3"}
    assert "order" in tracer.format_trace(root.trace_id)


def test_simulator_kernel_metrics():
    sim = Simulator(seed=3)
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event = sim.schedule(3.0, lambda: None)
    event.cancel()
    sim.run()
    assert sim.metrics.counter("sim.events_executed",
                               component="kernel").value == 2
    assert sim.metrics.counter("sim.events_cancelled",
                               component="kernel").value == 1


def test_simulator_telemetry_flag_disables_tracer():
    sim = Simulator(seed=3, telemetry=False)
    assert sim.tracer.enabled is False
    sim.tracer.record("x")
    assert len(sim.tracer) == 0
