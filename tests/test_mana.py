"""Tests for MANA: features, models, detection, correlation."""

import numpy as np
import pytest

from repro.mana import (
    FEATURE_NAMES, FeatureExtractor, IsolationForestModel, KMeansModel,
    MahalanobisModel, ManaInstance, Alert, AlertCorrelator,
    SituationalAwarenessBoard,
)
from repro.net.tap import PacketRecord


def make_record(time, src_mac="02:00:00:00:00:01", dst_ip="10.0.0.2",
                dst_port=8120, size=120, proto="udp", tcp_flags=None,
                is_arp=False, arp_op=None, dst_mac="02:00:00:00:00:02",
                src_ip="10.0.0.1"):
    return PacketRecord(time=time, network="test", ethertype="ipv4",
                        src_mac=src_mac, dst_mac=dst_mac, size=size,
                        src_ip=src_ip, dst_ip=dst_ip, proto=proto,
                        src_port=9999, dst_port=dst_port,
                        tcp_flags=tcp_flags, is_arp=is_arp, arp_op=arp_op)


def baseline_records(duration=60.0, rate=10.0, jitter=0.0):
    """Steady SCADA-like polling traffic."""
    records = []
    t = 0.0
    i = 0
    while t < duration:
        records.append(make_record(t, size=118 + (i % 3)))
        records.append(make_record(t + 0.01, src_mac="02:00:00:00:00:02",
                                   dst_ip="10.0.0.1", size=96))
        t += 1.0 / rate
        i += 1
    return records


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------
def test_feature_vector_shape_and_names():
    extractor = FeatureExtractor(window=5.0)
    windows = extractor.featurize_capture(baseline_records(20.0), "test")
    assert len(windows) == 4
    for window in windows:
        assert window.vector.shape == (len(FEATURE_NAMES),)
        named = window.named()
        assert named["packets"] > 0
        assert named["udp_fraction"] == 1.0


def test_empty_window_is_zero_vector():
    extractor = FeatureExtractor(window=5.0)
    window = extractor.featurize_window([], 0.0, "test")
    assert window.packet_count == 0
    assert not window.vector.any()


def test_new_flow_counting_is_stateful():
    extractor = FeatureExtractor(window=5.0)
    first = extractor.featurize_window([make_record(0.1)], 0.0, "t")
    second = extractor.featurize_window([make_record(5.1)], 5.0, "t")
    assert first.named()["new_flow_count"] == 1
    assert second.named()["new_flow_count"] == 0


def test_arp_and_scan_features():
    records = [make_record(0.1, is_arp=True, arp_op="reply", proto=None,
                           dst_ip=None, dst_port=None),
               make_record(0.2, proto="tcp", tcp_flags="syn"),
               make_record(0.3, proto="tcp", tcp_flags="rst")]
    window = FeatureExtractor(window=5.0).featurize_window(records, 0.0, "t")
    named = window.named()
    assert named["arp_packets"] == 1
    assert named["arp_replies"] == 1
    assert named["tcp_syn_count"] == 1
    assert named["tcp_rst_count"] == 1


# ---------------------------------------------------------------------------
# Models
# ---------------------------------------------------------------------------
@pytest.fixture
def training_matrix():
    rng = np.random.default_rng(3)
    base = np.array([100.0, 12000, 120, 5, 2, 2, 2, 0, 1, 0, 0.05,
                     0, 0, 1.0, 0.5])
    return base + rng.normal(0, base * 0.02 + 0.01,
                             size=(40, len(base)))


@pytest.mark.parametrize("model_cls", [MahalanobisModel, KMeansModel,
                                       IsolationForestModel])
def test_models_accept_baseline_and_flag_anomaly(model_cls, training_matrix):
    model = model_cls()
    model.fit(training_matrix)
    for row in training_matrix:
        assert model.score(row) <= 1.0, f"{model.name} false positive"
    anomaly = training_matrix[0].copy()
    anomaly[0] *= 50       # 50x packet burst
    anomaly[1] *= 80
    anomaly[4] += 10       # new talkers
    assert model.score(anomaly) > 1.0, f"{model.name} missed the anomaly"


@pytest.mark.parametrize("model_cls", [MahalanobisModel, KMeansModel,
                                       IsolationForestModel])
def test_models_require_training(model_cls, training_matrix):
    model = model_cls()
    with pytest.raises(RuntimeError):
        model.score(training_matrix[0])
    with pytest.raises(ValueError):
        model.fit(training_matrix[:1])


def test_kmeans_handles_multimodal_baseline():
    rng = np.random.default_rng(5)
    mode_a = rng.normal(100, 2, size=(30, len(FEATURE_NAMES)))
    mode_b = rng.normal(300, 2, size=(30, len(FEATURE_NAMES)))
    X = np.vstack([mode_a, mode_b])
    model = KMeansModel(k=2)
    model.fit(X)
    assert model.score(mode_a[0]) <= 1.0
    assert model.score(mode_b[0]) <= 1.0
    middle = np.full(len(FEATURE_NAMES), 200.0)
    assert model.score(middle) > 1.0


# ---------------------------------------------------------------------------
# Detector pipeline on a capture
# ---------------------------------------------------------------------------
def build_instance(extra_records=(), train_until=60.0):
    from repro.net.tap import Capture
    from repro.api import Simulator
    sim = Simulator(seed=8)
    capture = Capture("test")
    for record in baseline_records(120.0):
        capture.records.append(record)
    for record in extra_records:
        capture.records.append(record)
    capture.records.sort(key=lambda r: r.time)
    instance = ManaInstance(sim, "mana", capture, window=5.0)
    instance.train(0.0, train_until)
    return instance


def test_no_alerts_on_clean_traffic():
    instance = build_instance()
    alerts = instance.evaluate_range(60.0, 120.0)
    assert alerts == []


def test_port_scan_detected():
    scan = [make_record(80.0 + i * 0.02, proto="tcp", tcp_flags="syn",
                        dst_port=port, src_mac="02:00:00:00:00:99")
            for i, port in enumerate(range(1, 120))]
    instance = build_instance(extra_records=scan)
    alerts = instance.evaluate_range(60.0, 120.0)
    assert alerts
    drivers = {name for alert in alerts for name, _ in alert.top_features}
    assert drivers & {"tcp_syn_count", "unique_dst_ports", "new_flow_count",
                      "tcp_rst_count", "packets"}


def test_arp_poisoning_burst_detected():
    # Gratuitous-ARP storms from tools like arpspoof send replies
    # continuously (tens per second, here 20/s for 15s).
    poison = [make_record(80.0 + i * 0.05, is_arp=True, arp_op="reply",
                          proto=None, dst_ip=None, dst_port=None,
                          dst_mac="ff:ff:ff:ff:ff:ff",
                          src_mac="02:00:00:00:00:99", size=42)
              for i in range(300)]
    instance = build_instance(extra_records=poison)
    alerts = instance.evaluate_range(60.0, 120.0)
    assert alerts
    assert max(alert.score for alert in alerts) > 2.0
    # The poisoned windows themselves show the ARP storm clearly.
    window = instance.extractor.featurize_window(
        instance.capture.between(80.0, 85.0), 80.0, "test")
    assert window.named()["arp_replies"] >= 50


def test_dos_flood_detected():
    flood = [make_record(85.0 + i * 0.002, size=900,
                         src_mac="02:00:00:00:00:99")
             for i in range(2000)]
    instance = build_instance(extra_records=flood)
    alerts = instance.evaluate_range(60.0, 120.0)
    assert alerts
    assert max(alert.score for alert in alerts) > 2.0


def test_untrained_instance_refuses_evaluation():
    from repro.net.tap import Capture
    from repro.api import Simulator
    instance = ManaInstance(Simulator(seed=1), "m", Capture("x"))
    with pytest.raises(RuntimeError):
        instance.evaluate_range(0, 10)
    with pytest.raises(ValueError):
        instance.train(0.0, 1.0)   # empty capture


# ---------------------------------------------------------------------------
# Correlation and the board
# ---------------------------------------------------------------------------
def test_alert_correlation_groups_bursts():
    correlator = AlertCorrelator(gap=10.0)
    for t in (100.0, 103.0, 106.0):
        correlator.add(Alert(time=t, network="ops", score=2.0,
                             models_flagging=("mahalanobis",),
                             top_features=(("packets", 5.0),)))
    correlator.add(Alert(time=300.0, network="ops", score=3.0,
                         models_flagging=("kmeans",),
                         top_features=(("bytes", 9.0),)))
    assert len(correlator.incidents) == 2
    assert len(correlator.incidents[0].alerts) == 3
    assert correlator.incidents[0].duration == 6.0
    assert correlator.incidents[1].peak_score == 3.0


def test_board_tracks_status():
    correlator = AlertCorrelator(gap=10.0)
    correlator.add(Alert(time=50.0, network="ops", score=2.0,
                         models_flagging=("m",), top_features=()))
    board = SituationalAwarenessBoard()
    board.set_quiet("enterprise")
    board.observe(correlator, now=55.0)
    assert board.network_status["ops"] == "ALERT"
    assert board.network_status["enterprise"] == "normal"
    board.observe(correlator, now=500.0)
    assert board.network_status["ops"] == "normal"
    assert "incidents logged: 1" in board.render()
