"""Smoke tests: the runnable examples execute end to end.

The quickstart runs in full; the heavier examples are validated by
importing their modules and exercising their building blocks (their
full runs are exercised by the benchmarks, which cover the same
scenarios with assertions).
"""

import importlib.util
import io
import os
from contextlib import redirect_stdout

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs():
    module = load_example("quickstart.py")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert "operator opens B57" in output
    assert "command still executed: field B57 closed = True" in output
    assert "master views consistent: True" in output
    assert "B57" in output and "OPEN" in output or "closed" in output


@pytest.mark.parametrize("name", ["redteam_exercise.py", "power_plant.py",
                                  "mana_monitoring.py",
                                  "ground_truth_recovery.py"])
def test_examples_importable(name):
    module = load_example(name)
    assert callable(module.main)


def test_ground_truth_recovery_example_runs():
    module = load_example("ground_truth_recovery.py")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert "automatic resets performed: 1" in output
    assert "B56 still correctly shown open: True" in output
    assert "did \nNOT come back" in output or "NOT come back" in output
