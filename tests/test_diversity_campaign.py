"""End-to-end diversity campaign: exploits vs the replicated fleet
(Section II's long-lifetime threat model)."""

import pytest

from repro.api import GridSpec, Simulator, build_spire
from repro.diversity import ExploitDeveloper
from repro.redteam import Attacker
from repro.redteam.scenarios import (
    exploit_replica_application, run_diversity_exploit_campaign,
)


@pytest.fixture
def campaign():
    sim = Simulator(seed=91)
    system = build_spire(sim, GridSpec.single_plant(
        n_distribution_plcs=0, n_generation_plcs=0, n_hmis=1,
        proactive_recovery_period=30.0, proactive_recovery_downtime=0.5).spire_config())
    sim.run(until=4.0)
    from repro.net import Host, ubuntu_desktop_2016
    staging = Host(sim, "rt-box", os_profile=ubuntu_desktop_2016())
    system.external_lan.connect(staging)
    attacker = Attacker(sim, "redteam", staging)
    developer = ExploitDeveloper(clock=lambda: sim.now)
    return sim, system, attacker, developer


def test_campaign_outcomes(campaign):
    sim, system, attacker, developer = campaign
    report = run_diversity_exploit_campaign(system, attacker, developer)
    assert report.achieved("exploit first replica (matching build)")
    assert not report.achieved("reuse exploit on other replicas")
    assert not report.achieved(
        "disrupt SCADA with one compromised replica")
    assert not report.achieved("exploit survives proactive recovery")
    # The cleansed replica is back in a clean state.
    stage = next(s for s in report.stages
                 if s.stage == "exploit survives proactive recovery")
    assert stage.observations["cleansed"] is True


def test_exploit_only_matches_current_build(campaign):
    sim, system, attacker, developer = campaign
    names = system.prime_config.replica_names
    exploit = developer.study_and_develop(
        system.variants[names[1]]["scada-master"], "overflow")
    assert exploit_replica_application(attacker, system, names[1], exploit)
    assert not exploit_replica_application(attacker, system, names[2],
                                           exploit)
    assert system.replicas[names[1]].byzantine == "crash"
    assert system.replicas[names[2]].byzantine is None


def test_monoculture_system_falls_to_one_exploit():
    """With diversify=False (the ablation), one exploit owns the fleet
    and the f=1 assumption is violated: the system halts or worse."""
    sim = Simulator(seed=92)
    system = build_spire(sim, GridSpec.single_plant(
        n_distribution_plcs=0, n_generation_plcs=0, n_hmis=1,
        diversify=False).spire_config())
    sim.run(until=4.0)
    from repro.net import Host
    staging = Host(sim, "rt-box")
    system.external_lan.connect(staging)
    attacker = Attacker(sim, "redteam", staging)
    developer = ExploitDeveloper(clock=lambda: sim.now)
    names = system.prime_config.replica_names
    exploit = developer.study_and_develop(
        system.variants[names[0]]["scada-master"], "overflow")
    felled = sum(1 for name in names
                 if exploit_replica_application(attacker, system, name,
                                                exploit))
    assert felled == len(names)
    # No quorum remains: a new command never executes.
    hmi = system.hmis[0]
    unit = system.physical_plc
    hmi.command_breaker(unit.device.name, "B57", False)
    sim.run(until=sim.now + 6.0)
    assert unit.topology.get_breaker("B57") is True
