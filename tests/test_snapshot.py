"""Tests for the checkpoint/restore layer (:mod:`repro.snapshot`).

The load-bearing property everything else leans on: **restoring a
snapshot taken at T/2 and running to T is byte-identical to an
uninterrupted run to T** — the event digest (every executed event) and
the campaign report digest are the witnesses.  Holds for monolithic and
sharded worlds, across seeds and shard counts, and for crash-resumed
campaigns.
"""

import json
import os

import pytest

from repro.faults.campaign import report_digest, run_campaign
from repro.grid.spec import GridSpec, make_town_spec
from repro.grid.world import build_world
from repro.snapshot import (
    SnapshotError, nearest_snapshot, read_header, replay_dump,
    restore_world, run_with_checkpoints, save_world,
)
from repro.snapshot import format as snapshot_format
from repro.util.atomicio import write_bytes, write_text

T_FULL = 3.0
T_HALF = 1.5


def _build(spec, seed):
    world = build_world(spec, seed=seed)
    world.start_workload(6, start=0.3, interval=0.6)
    return world


def _specs():
    return {
        "single-plant": GridSpec.single_plant(),
        "town5": make_town_spec(5, seed=3),
    }


# ----------------------------------------------------------------------
# Container format
# ----------------------------------------------------------------------
class TestFormat:
    def test_round_trip_and_header(self, tmp_path):
        path = str(tmp_path / "x.snap")
        payload = {"hello": [1, 2, 3], "nested": {"a": (4, 5)}}
        header = snapshot_format.dump(path, "world", payload,
                                      {"now": 1.25})
        assert header["schema"] == snapshot_format.SCHEMA_VERSION
        assert header["kind"] == "world"
        # The header is readable without unpickling anything.
        assert read_header(path)["meta"]["now"] == 1.25
        loaded_header, loaded = snapshot_format.load(path)
        assert loaded == payload
        assert loaded_header == header

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "x.snap")
        snapshot_format.dump(path, "world", {}, {})
        with pytest.raises(SnapshotError, match="expected"):
            snapshot_format.load(path, expect_kind="campaign-checkpoint")

    def test_corruption_detected(self, tmp_path):
        path = str(tmp_path / "x.snap")
        snapshot_format.dump(path, "world", {"key": "value"}, {})
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        write_bytes(path, bytes(blob))
        with pytest.raises(SnapshotError, match="digest"):
            snapshot_format.load(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "x.snap")
        snapshot_format.dump(path, "world", {"key": "value"}, {})
        blob = open(path, "rb").read()
        write_bytes(path, blob[:-4])
        with pytest.raises(SnapshotError):
            snapshot_format.load(path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = str(tmp_path / "x.snap")
        write_text(path, "just some text\n")
        with pytest.raises(SnapshotError, match="magic|not a"):
            read_header(path)

    def test_future_schema_rejected(self, tmp_path):
        path = str(tmp_path / "x.snap")
        snapshot_format.dump(path, "world", {}, {})
        magic, header_line, rest = open(path, "rb").read().split(b"\n", 2)
        header = json.loads(header_line)
        header["schema"] = snapshot_format.SCHEMA_VERSION + 1
        write_bytes(path, b"\n".join([
            magic, json.dumps(header, sort_keys=True).encode(), rest]))
        with pytest.raises(SnapshotError, match="schema"):
            read_header(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "x.snap")
        snapshot_format.dump(path, "world", {"key": "value"}, {})
        assert sorted(os.listdir(tmp_path)) == ["x.snap"]


# ----------------------------------------------------------------------
# Monolithic worlds: restore + run == uninterrupted run
# ----------------------------------------------------------------------
class TestWorldRestoreDeterminism:
    @pytest.mark.parametrize("spec_name", ["single-plant", "town5"])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_restore_then_run_is_byte_identical(self, tmp_path, spec_name,
                                                seed):
        spec = _specs()[spec_name]
        straight = _build(spec, seed)
        straight.run(until=T_FULL)
        reference = straight.sim.event_digest()

        world = _build(spec, seed)
        world.run(until=T_HALF)
        path = str(tmp_path / "half.snap")
        save_world(path, world)
        # Saving is side-effect free: the saver continues identically.
        world.run(until=T_FULL)
        assert world.sim.event_digest() == reference

        restored = restore_world(path)
        assert restored.sim.now == pytest.approx(T_HALF)
        restored.run(until=T_FULL)
        assert restored.sim.event_digest() == reference

    def test_save_meta_describes_the_world(self, tmp_path):
        spec = make_town_spec(5, seed=3)
        world = _build(spec, 3)
        world.run(until=1.0)
        path = str(tmp_path / "w.snap")
        save_world(path, world)
        meta = read_header(path)["meta"]
        assert meta["spec_name"] == spec.name
        assert meta["now"] == pytest.approx(1.0)
        assert meta["events_executed"] == world.sim.events_executed
        assert meta["event_digest"] == world.sim.event_digest()

    def test_worldless_object_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="no .sim"):
            save_world(str(tmp_path / "x.snap"), object())


# ----------------------------------------------------------------------
# Periodic checkpointing + time travel
# ----------------------------------------------------------------------
class TestCheckpointsAndReplay:
    def test_checkpointed_run_equals_straight_run(self, tmp_path):
        spec = make_town_spec(3, seed=11)
        straight = _build(spec, 11)
        straight.run(until=T_FULL)
        reference = straight.sim.event_digest()

        world = _build(spec, 11)
        paths = run_with_checkpoints(world, T_FULL, str(tmp_path),
                                     every=1.0)
        assert world.sim.event_digest() == reference
        assert len(paths) == 3
        times = [read_header(p)["meta"]["now"] for p in paths]
        assert times == pytest.approx([1.0, 2.0, 3.0])

    def test_nearest_snapshot_picks_latest_at_or_before(self, tmp_path):
        spec = make_town_spec(3, seed=11)
        world = _build(spec, 11)
        run_with_checkpoints(world, T_FULL, str(tmp_path), every=1.0)
        path, header = nearest_snapshot(str(tmp_path), 2.7)
        assert header["meta"]["now"] == pytest.approx(2.0)
        # Before the first checkpoint: fall back to the earliest.
        path, header = nearest_snapshot(str(tmp_path), 0.2)
        assert header["meta"]["now"] == pytest.approx(1.0)
        assert nearest_snapshot(str(tmp_path / "empty"), 1.0) is None

    def test_replay_dump_reproduces_a_window(self, tmp_path):
        spec = make_town_spec(3, seed=11)
        world = _build(spec, 11)
        run_with_checkpoints(world, T_FULL, str(tmp_path), every=1.0)
        dump_doc = {"window": {"since": 1.4, "until": 2.6},
                    "reason": "violation: test", "fault_ids": []}
        snapshot, _ = nearest_snapshot(str(tmp_path),
                                       dump_doc["window"]["since"])
        replayed = replay_dump(dump_doc, snapshot)
        assert replayed["reason"] == "replay"
        assert replayed["trigger"]["snapshot"] == snapshot
        assert replayed["trigger"]["original_reason"] == "violation: test"
        assert replayed["window"]["until"] == pytest.approx(2.6)

    def test_replay_rejects_snapshot_inside_window(self, tmp_path):
        spec = make_town_spec(3, seed=11)
        world = _build(spec, 11)
        paths = run_with_checkpoints(world, T_FULL, str(tmp_path),
                                     every=1.0)
        with pytest.raises(SnapshotError, match="earlier checkpoint"):
            replay_dump({"window": {"since": 1.5, "until": 2.5}},
                        paths[-1])


# ----------------------------------------------------------------------
# Sharded worlds: restore under any shard count
# ----------------------------------------------------------------------
class TestShardedRestore:
    def test_sharded_restore_is_byte_identical(self, tmp_path):
        from repro.shard import ShardedGridWorld

        spec = make_town_spec(5, seed=3)
        straight = ShardedGridWorld(spec, shards=1, seed=3)
        try:
            straight.start_workload(6, start=0.3, interval=0.6)
            straight.run(until=T_FULL)
            reference = straight.event_digest()
        finally:
            straight.close()

        world = ShardedGridWorld(spec, shards=1, seed=3)
        path = str(tmp_path / "sharded.snap")
        try:
            world.start_workload(6, start=0.3, interval=0.6)
            world.run(until=T_HALF)
            world.save(path)
        finally:
            world.close()
        assert read_header(path)["kind"] == "sharded"

        # The snapshot is placement-independent: restore under either
        # shard count and reach the same digest.
        for shards in (1, 2):
            restored = ShardedGridWorld.restore(path, shards=shards)
            try:
                restored.run(until=T_FULL)
                assert restored.event_digest() == reference, \
                    f"shards={shards} diverged after restore"
            finally:
                restored.close()

    def test_sharded_auto_checkpoints(self, tmp_path):
        from repro.shard import ShardedGridWorld

        spec = make_town_spec(5, seed=3)
        world = ShardedGridWorld(spec, shards=1, seed=3)
        try:
            world.start_workload(6, start=0.3, interval=0.6)
            world.enable_checkpoints(str(tmp_path), every=1.0)
            world.run(until=T_FULL)
            digest = world.event_digest()
        finally:
            world.close()
        entries = snapshot_format.scan_dir(str(tmp_path), kind="sharded")
        assert len(entries) >= 2
        # The last auto-checkpoint restores and matches the live world.
        restored = ShardedGridWorld.restore(entries[-1][0], shards=1)
        try:
            restored.run(until=T_FULL)
            assert restored.event_digest() == digest
        finally:
            restored.close()


# ----------------------------------------------------------------------
# Campaign checkpoint/resume
# ----------------------------------------------------------------------
class TestCampaignResume:
    KW = dict(scenarios=["baseline", "partition"], seeds=[1, 2],
              duration=6.0)

    def test_resume_is_byte_identical(self, tmp_path):
        checkpoint = str(tmp_path / "camp.ckpt")
        reference = report_digest(run_campaign(jobs=1, **self.KW))

        full = run_campaign(jobs=1, checkpoint=checkpoint, **self.KW)
        assert report_digest(full) == reference
        _, payload = snapshot_format.load(
            checkpoint, expect_kind="campaign-checkpoint")
        assert sorted(payload["results"]) == [
            "baseline:1", "baseline:2", "partition:1", "partition:2"]

        # Simulate a crash after two cells: truncate the checkpoint,
        # then resume — the report must not change by a byte.
        partial = dict(sorted(payload["results"].items())[:2])
        snapshot_format.dump(checkpoint, "campaign-checkpoint",
                             {"config_key": payload["config_key"],
                              "results": partial}, {})
        resumed = run_campaign(jobs=1, checkpoint=checkpoint, resume=True,
                               **self.KW)
        assert report_digest(resumed) == reference

        # Fully-cached resume: nothing dispatched, same bytes.
        again = run_campaign(jobs=1, checkpoint=checkpoint, resume=True,
                             **self.KW)
        assert report_digest(again) == reference

    def test_config_mismatch_rejected(self, tmp_path):
        checkpoint = str(tmp_path / "camp.ckpt")
        run_campaign(scenarios=["baseline"], seeds=[1], duration=6.0,
                     jobs=1, checkpoint=checkpoint)
        with pytest.raises(SnapshotError, match="different"):
            run_campaign(scenarios=["baseline"], seeds=[1, 2],
                         duration=6.0, jobs=1, checkpoint=checkpoint,
                         resume=True)

    def test_missing_checkpoint_starts_fresh(self, tmp_path):
        checkpoint = str(tmp_path / "never-written.ckpt")
        report = run_campaign(scenarios=["baseline"], seeds=[1],
                              duration=6.0, jobs=1,
                              checkpoint=checkpoint, resume=True)
        assert report["passed"]
        assert os.path.exists(checkpoint)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicIO:
    def test_write_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "out.txt")
        write_text(path, "first")
        write_text(path, "second")
        assert open(path).read() == "second"
        assert sorted(os.listdir(tmp_path)) == ["out.txt"]

    def test_failure_leaves_original_intact(self, tmp_path):
        path = str(tmp_path / "out.txt")
        write_text(path, "original")
        with pytest.raises(TypeError):
            write_bytes(path, "not-bytes")
        assert open(path).read() == "original"
        assert sorted(os.listdir(tmp_path)) == ["out.txt"]
