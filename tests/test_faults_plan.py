"""FaultPlan DSL, budget guard, and campaign runner behaviour."""

import json

import pytest

from repro.api import Simulator
from repro.faults import (
    BUILTIN_SCENARIOS, BudgetGuard, ChaosHarness, FaultPlan, MonitorSuite,
    report_to_json, run_campaign, run_scenario,
)


# ----------------------------------------------------------------------
# BudgetGuard
# ----------------------------------------------------------------------
def test_budget_guard_enforces_f_plus_k():
    sim = Simulator(seed=1)
    guard = BudgetGuard(f=1, k=1)
    assert guard.limit == 2
    assert guard.acquire(sim, ["r1"], "down")
    assert guard.acquire(sim, ["r2"], "down")
    assert not guard.acquire(sim, ["r3"], "down")
    assert guard.denied == 1
    assert not guard.went_over_budget
    guard.release(sim, ["r1"], "down")
    assert guard.acquire(sim, ["r3"], "down")


def test_budget_guard_byzantine_capped_at_f():
    sim = Simulator(seed=1)
    guard = BudgetGuard(f=1, k=1)
    assert guard.acquire(sim, ["r1"], "byzantine")
    # A second byzantine replica exceeds f even though f+k slots remain.
    assert not guard.acquire(sim, ["r2"], "byzantine")
    # But a crash alongside the byzantine replica is still in budget.
    assert guard.acquire(sim, ["r2"], "down")
    assert guard.impaired() == {"r1", "r2"}


def test_budget_guard_unenforced_records_breach():
    sim = Simulator(seed=1)
    guard = BudgetGuard(f=1, k=1, enforce=False)
    for name in ["r1", "r2", "r3"]:
        assert guard.acquire(sim, [name], "down")
    assert guard.went_over_budget
    assert guard.currently_over()
    assert guard.denied == 0
    guard.release(sim, ["r3"], "down")
    assert not guard.currently_over()
    assert guard.went_over_budget          # breach is remembered


# ----------------------------------------------------------------------
# FaultPlan DSL
# ----------------------------------------------------------------------
def test_flap_link_expands_to_individual_downs():
    plan = FaultPlan("flappy").flap_link(at=1.0, flaps=3, down_for=0.2,
                                         up_for=0.8)
    assert len(plan) == 3
    assert [action.at for action in plan.actions] == [1.0, 2.0, 3.0]
    assert all(action.kind == "link-down" for action in plan.actions)


def test_plan_targets_are_seed_deterministic():
    def run(seed):
        sim = Simulator(seed=seed)
        harness = ChaosHarness(sim, f=1, k=1)
        plan = (FaultPlan("det")
                .crash(at=1.0, duration=1.0)
                .crash(at=4.0, duration=1.0)
                .link_down(at=7.0, duration=0.5))
        armed = plan.arm(sim, harness)
        sim.run(until=10.0)
        return [action["targets"] for action in armed.summary()["actions"]]

    assert run(42) == run(42)
    # A different seed picks (at least sometimes) different victims;
    # with three picks over six replicas, seed 42 vs 43 differ.
    assert run(42) != run(43)


def test_armed_plan_denies_over_budget_actions():
    sim = Simulator(seed=5)
    harness = ChaosHarness(sim, f=1, k=1)
    plan = FaultPlan("overload")
    for index in range(4):                 # 4 concurrent > f+k = 2
        plan.crash(at=1.0 + index * 0.1, duration=5.0)
    armed = plan.arm(sim, harness)
    sim.run(until=3.0)
    summary = armed.summary()
    assert summary["injected"] == 2
    assert summary["denied"] == 2
    assert not summary["went_over_budget"]
    down = [name for name, rep in harness.replicas.items()
            if not rep.running]
    assert len(down) == 2


def test_byzantine_leader_sentinel_hits_current_leader():
    sim = Simulator(seed=7)
    harness = ChaosHarness(sim, f=1, k=1)
    plan = FaultPlan("leader-hit").byzantine(at=2.0, duration=3.0,
                                             mode="slow-leader",
                                             replica="leader")
    armed = plan.arm(sim, harness)
    sim.run(until=3.0)
    [action] = armed.summary()["actions"]
    [target] = action["targets"]
    assert harness.replicas[target].byzantine == "slow-leader"
    sim.run(until=8.0)
    assert harness.replicas[target].byzantine is None   # reverted


def test_kill_action_shuts_down_client_process():
    sim = Simulator(seed=9)
    harness = ChaosHarness(sim, f=1, k=1, n_clients=2)
    plan = FaultPlan("cull").kill(at=1.0, component="clients", index=0)
    plan.arm(sim, harness)
    harness.start_workload(updates=10, start=2.0, interval=0.3)
    sim.run(until=10.0)
    assert not harness.clients[0].running
    assert harness.clients[1].running
    # The surviving client's updates still confirm.
    assert harness.confirmed_count() == len(harness.submitted) > 0


def test_fault_telemetry_counters_emitted():
    sim = Simulator(seed=3)
    harness = ChaosHarness(sim, f=1, k=1)
    plan = FaultPlan("counted").crash(at=1.0, duration=1.0)
    plan.arm(sim, harness)
    sim.run(until=5.0)
    assert sim.metrics.total("faults.injected") == 1
    assert sim.metrics.total("faults.reverted") == 1


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
def test_run_scenario_baseline_is_clean():
    result = run_scenario(BUILTIN_SCENARIOS["baseline"], seed=1,
                          duration=10.0)
    assert result["passed"]
    assert result["violations"] == []
    assert result["workload"]["confirmed"] > 0
    assert result["confirm_latency"]["samples"] > 0


def test_run_scenario_byzantine_storm_detected():
    result = run_scenario(BUILTIN_SCENARIOS["byzantine-storm"], seed=1,
                          duration=14.0)
    assert result["passed"]                 # passed == violation detected
    assert result["violations"]
    assert result["faults"]["went_over_budget"]


def test_run_campaign_aggregates_and_serialises():
    report = run_campaign(scenarios=["baseline", "byzantine-storm"],
                          seeds=[1, 2], duration=12.0)
    assert report["passed"]
    assert set(report["scenarios"]) == {"baseline", "byzantine-storm"}
    for entry in report["scenarios"].values():
        assert len(entry["runs"]) == 2
        assert entry["passed"]
    round_trip = json.loads(report_to_json(report))
    assert round_trip["config"]["seeds"] == [1, 2]


def test_run_campaign_rejects_unknown_scenario():
    with pytest.raises(KeyError, match="no-such-scenario"):
        run_campaign(scenarios=["no-such-scenario"], seeds=[1])


def test_monitor_suite_works_against_harness_with_plan():
    """End-to-end shape used by the CLI: harness + plan + monitors."""
    sim = Simulator(seed=4)
    harness = ChaosHarness(sim, f=1, k=1)
    plan = FaultPlan("drill").crash(at=2.0, duration=1.5).partition(
        at=6.0, duration=2.0, isolate=1)
    armed = plan.arm(sim, harness)
    suite = MonitorSuite(sim, harness, armed=armed)
    for client in harness.clients:
        suite.watch_client(client)
    suite.start()
    harness.start_workload(updates=20, start=0.2, interval=0.3)
    sim.run(until=16.0)
    assert armed.summary()["injected"] == 2
    assert suite.passed(), [v.snapshot() for v in suite.violations]
