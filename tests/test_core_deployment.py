"""Tests for the Fig. 3 testbed assembly and its supporting processes."""

import pytest

from repro.api import BreakerCycler, Simulator, build_redteam_testbed


@pytest.fixture(scope="module")
def testbed():
    sim = Simulator(seed=95)
    tb = build_redteam_testbed(sim)
    sim.run(until=8.0)
    return sim, tb


def test_networks_present(testbed):
    sim, tb = testbed
    assert tb.enterprise_lan.subnet.cidr == "10.10.10.0/24"
    assert tb.commercial.lan.subnet.cidr == "10.10.20.0/24"
    assert tb.spire.prime_config.n == 4        # red-team config: f=1, k=0
    assert len(tb.mana) == 3


def test_enterprise_chatter_generates_traffic(testbed):
    sim, tb = testbed
    assert len(tb.captures["enterprise"]) > 10


def test_commercial_and_spire_both_operational(testbed):
    sim, tb = testbed
    assert tb.commercial.hmi.pushes_received > 0
    assert tb.spire.hmis[0].display_updates > 0


def test_firewall_blocks_unsolicited_enterprise_to_ops(testbed):
    """Only the allowed (historian/webadmin) flows cross the perimeter."""
    sim, tb = testbed
    results = []
    workstation = tb.enterprise_hosts[0]
    plc_ip = tb.commercial.lan.ip_of(tb.commercial.plc_host)
    workstation.tcp_probe(plc_ip, 502, results.append)
    sim.run(until=sim.now + 2.0)
    assert results == ["filtered"]


def test_allowed_webadmin_flow_crosses_perimeter(testbed):
    sim, tb = testbed
    results = []
    workstation = tb.enterprise_hosts[0]
    server_ip = tb.commercial.lan.ip_of(tb.commercial.primary.host)
    workstation.tcp_probe(server_ip, 80, results.append)
    sim.run(until=sim.now + 2.0)
    assert results == ["open"]


def test_spire_isolated_from_enterprise(testbed):
    sim, tb = testbed
    results = []
    workstation = tb.enterprise_hosts[0]
    replica_host = next(iter(tb.spire.replica_hosts.values()))
    replica_ip = tb.spire.external_lan.ip_of(replica_host)
    workstation.tcp_probe(replica_ip, 8120, results.append)
    sim.run(until=sim.now + 2.0)
    assert results in (["filtered"], ["unreachable"])


def test_breaker_cycler_follows_predetermined_sequence():
    sim = Simulator(seed=96)
    commands = []
    cycler = BreakerCycler(sim, "cyc", ["A", "B", "C"],
                           lambda breaker, close: commands.append(
                               (breaker, close)),
                           interval=1.0)
    sim.run(until=6.5)
    assert commands == [("A", False), ("B", False), ("C", False),
                        ("A", True), ("B", True), ("C", True)]
    assert cycler.expected_state() == {"A": True, "B": True, "C": True}


def test_place_attacker_enterprise_has_gateway(testbed):
    sim, tb = testbed
    host = tb.place_attacker("enterprise", "rt-probe")
    assert host._gateway_ip == tb.enterprise_lan.ip_of(tb.router)


def test_place_attacker_spire_registered_on_switch(testbed):
    sim, tb = testbed
    host = tb.place_attacker("ops-spire", "rt-sp-probe")
    mac = tb.spire.external_lan.interface_of(host).mac
    assert mac in tb.spire.external_lan.switch._static_map


def test_mana_instances_are_passive(testbed):
    """IDS hosts never transmit into the monitored networks: the MANA
    instances only consume Capture objects."""
    sim, tb = testbed
    for instance in tb.mana.values():
        assert not hasattr(instance, "host")
        assert instance.capture.records is not None
