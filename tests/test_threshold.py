"""Tests for the k-of-n threshold signature scheme."""

import pytest

from repro.crypto.threshold import (
    PartialSignature, ThresholdError, ThresholdScheme,
)
from repro.util.rng import DeterministicRng


@pytest.fixture
def scheme():
    return ThresholdScheme("spire-masters",
                           [f"replica{i}" for i in range(1, 7)],
                           threshold=2, rng=DeterministicRng(3))


def test_k_partials_combine_and_verify(scheme):
    payload = {"cmd": "open", "breaker": "B57"}
    partials = [scheme.share_for(f"replica{i}").sign_partial(payload)
                for i in (1, 2)]
    signature = scheme.combine(partials, payload)
    assert scheme.verify(signature, payload)
    assert len(signature.signers) == 2


def test_fewer_than_k_partials_fail(scheme):
    payload = "x"
    partials = [scheme.share_for("replica1").sign_partial(payload)]
    with pytest.raises(ThresholdError):
        scheme.combine(partials, payload)


def test_duplicate_partials_do_not_count_twice(scheme):
    payload = "x"
    partial = scheme.share_for("replica1").sign_partial(payload)
    with pytest.raises(ThresholdError):
        scheme.combine([partial, partial], payload)


def test_partial_for_wrong_payload_rejected(scheme):
    good = scheme.share_for("replica1").sign_partial("A")
    bad = scheme.share_for("replica2").sign_partial("B")
    with pytest.raises(ThresholdError):
        scheme.combine([good, bad], "A")


def test_forged_partial_rejected(scheme):
    good = scheme.share_for("replica1").sign_partial("A")
    forged = PartialSignature(group="spire-masters",
                              share_holder="replica2", tag=b"\x00" * 32)
    with pytest.raises(ThresholdError):
        scheme.combine([good, forged], "A")


def test_outsider_partial_rejected(scheme):
    other = ThresholdScheme("spire-masters", ["mallory"], threshold=1,
                            rng=DeterministicRng(9))
    good = scheme.share_for("replica1").sign_partial("A")
    fake = other.share_for("mallory").sign_partial("A")
    with pytest.raises(ThresholdError):
        scheme.combine([good, fake], "A")


def test_verification_detects_payload_tampering(scheme):
    payload = {"cmd": "open"}
    partials = [scheme.share_for(f"replica{i}").sign_partial(payload)
                for i in (3, 4)]
    signature = scheme.combine(partials, payload)
    assert not scheme.verify(signature, {"cmd": "close"})


def test_verification_rejects_forged_combined(scheme):
    from repro.crypto.threshold import ThresholdSignature
    forged = ThresholdSignature(group="spire-masters",
                                signers=("replica1", "replica2"),
                                tag=b"\x00" * 32)
    assert not scheme.verify(forged, "anything")


def test_threshold_bounds_checked():
    with pytest.raises(ValueError):
        ThresholdScheme("g", ["a"], threshold=2)
    with pytest.raises(ValueError):
        ThresholdScheme("g", ["a"], threshold=0)
    with pytest.raises(ThresholdError):
        ThresholdScheme("g", ["a"], 1).share_for("b")


def test_three_of_six_configuration():
    scheme = ThresholdScheme("g", [f"r{i}" for i in range(6)], threshold=3,
                             rng=DeterministicRng(4))
    payload = [1, 2, 3]
    partials = [scheme.share_for(f"r{i}").sign_partial(payload)
                for i in (0, 2, 5)]
    signature = scheme.combine(partials, payload)
    assert scheme.verify(signature, payload)
