"""Warm-start snapshot cache: byte-identity against cold builds, cache
accounting, integrity on corruption, and the bytes-level snapshot API."""

import pytest

from repro.faults import report_digest, run_campaign
from repro.faults.campaign import (
    BUILTIN_SCENARIOS, _warm_image, run_scenario,
)
from repro.grid import build_world, make_town_spec
from repro.mana.sweep import run_training_sweep, sweep_digest
from repro.snapshot import (
    SnapshotError, WarmCache, restore_world_bytes, save_world, save_world_bytes,
)
from repro.snapshot import warmcache
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture
def active_cache():
    cache = warmcache.activate(WarmCache())
    yield cache
    warmcache.deactivate()


# ----------------------------------------------------------------------
# Byte-identity: warm-forked campaigns == cold-built campaigns
# ----------------------------------------------------------------------
def test_chaos_campaign_warm_matches_cold_across_jobs():
    """{warm, cold} x {jobs 1, 2} all produce one report digest."""
    digests = set()
    for warm in (True, False):
        for jobs in (1, 2):
            report = run_campaign(scenarios=["partition", "crash-recover"],
                                  seeds=[3, 11], duration=6.0, jobs=jobs,
                                  warm_cache=warm)
            digests.add(report_digest(report))
    assert len(digests) == 1


def test_grid_campaign_warm_matches_cold_across_jobs():
    spec = make_town_spec(5).to_dict()
    digests = set()
    for warm in (True, False):
        for jobs in (1, 2):
            report = run_campaign(scenarios=["partition"], seeds=[3, 11],
                                  duration=6.0, jobs=jobs, grid=spec,
                                  warm_cache=warm)
            digests.add(report_digest(report))
    assert len(digests) == 1


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_warm_cache_hit_accounting_on_registry():
    """Same-config scenarios share one warm image per seed: every cell
    is a hit, none miss, and the cache reports its footprint."""
    metrics = MetricsRegistry()
    report = run_campaign(
        scenarios=["baseline", "partition", "crash-recover"],
        seeds=[3, 11], duration=6.0, jobs=1, metrics=metrics)
    assert report["passed"]
    assert metrics.counter("snapshot.warmcache.hits", "campaign").value == 6
    assert metrics.counter("snapshot.warmcache.misses", "campaign").value == 0
    assert metrics.gauge("snapshot.warmcache.bytes", "campaign").value > 0


def test_cold_campaign_records_no_warmcache_metrics():
    metrics = MetricsRegistry()
    run_campaign(scenarios=["baseline"], seeds=[3], duration=6.0,
                 jobs=1, metrics=metrics, warm_cache=False)
    assert not metrics.find(prefix="snapshot.warmcache")


def test_absent_key_counts_a_miss_and_returns_none(active_cache):
    assert active_cache.restore("never-warmed") is None
    assert active_cache.misses == 1 and active_cache.hits == 0


# ----------------------------------------------------------------------
# Integrity: corrupt cache entries fail loudly, never rebuild silently
# ----------------------------------------------------------------------
def test_corrupted_cached_bytes_raise_snapshot_error(active_cache):
    image = _warm_image(seed=3, f=1, k=1, harness={}, run_for=6.0,
                        arm_at=2.0, warm_key="cell")
    corrupt = image[:-40] + bytes(40)
    active_cache.put("cell", corrupt)
    with pytest.raises(SnapshotError):
        run_scenario(BUILTIN_SCENARIOS["partition"], 3, duration=6.0,
                     arm_at=2.0, warm_key="cell")


def test_truncated_cached_bytes_raise_snapshot_error(active_cache):
    image = _warm_image(seed=3, f=1, k=1, harness={}, run_for=6.0,
                        arm_at=2.0, warm_key="cell")
    active_cache.put("cell", image[:len(image) // 2])
    with pytest.raises(SnapshotError):
        active_cache.restore("cell")


def test_wrong_snapshot_time_raises_snapshot_error(active_cache):
    """An image warmed to the wrong horizon is a config bug, not a
    fallback case — restoring it must fail, not silently diverge."""
    image = _warm_image(seed=3, f=1, k=1, harness={}, run_for=6.0,
                        arm_at=1.0, warm_key="cell")
    active_cache.put("cell", image)
    with pytest.raises(SnapshotError, match="arm"):
        run_scenario(BUILTIN_SCENARIOS["partition"], 3, duration=6.0,
                     arm_at=2.0, warm_key="cell")


# ----------------------------------------------------------------------
# Bytes-level snapshot API
# ----------------------------------------------------------------------
def test_save_restore_world_bytes_roundtrip():
    world = build_world(make_town_spec(3, seed=7))
    world.run(until=4.0)
    data = save_world_bytes(world)
    # Saving is side-effect free and the restored twin replays
    # byte-identically.
    restored = restore_world_bytes(data)
    assert restored.sim.now == world.sim.now
    assert restored.sim.event_digest() == world.sim.event_digest()
    world.run(until=8.0)
    restored.run(until=8.0)
    assert restored.sim.event_digest() == world.sim.event_digest()


def test_save_world_disk_delegates_to_bytes(tmp_path):
    world = build_world(make_town_spec(3, seed=7))
    world.run(until=2.0)
    path = tmp_path / "world.snap"
    header = save_world(str(path), world)
    data = save_world_bytes(world)
    # One format path: the file is exactly the bytes-level container.
    assert path.read_bytes() == data
    assert header["kind"] == "world"
    assert header["payload_sha256"] in data.decode("latin-1")


def test_restore_world_bytes_rejects_foreign_kind():
    from repro.snapshot import dumps
    with pytest.raises(SnapshotError, match="world"):
        restore_world_bytes(dumps("campaign-checkpoint", {"x": 1}))


# ----------------------------------------------------------------------
# MANA sweep warm path
# ----------------------------------------------------------------------
def test_mana_sweep_warm_matches_cold():
    digests = set()
    for warm in (True, False):
        report = run_training_sweep(models=["mahalanobis", "kmeans"],
                                    seeds=[3, 11], train_windows=6,
                                    holdout_windows=6, jobs=2,
                                    warm_cache=warm)
        digests.add(sweep_digest(report))
    assert len(digests) == 1
