"""Shared test fixtures: a miniature Spire-style Prime cluster.

Builds the two-network layout of Fig. 2 — replicas dual-homed on an
isolated *internal* LAN (replication traffic) and an *external* LAN
(client traffic) — with a toy replicated key-value app standing in for
the SCADA master.  The SCADA tests use the real master instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.crypto import KeyStore
from repro.net import Host, Lan, locked_down_firewall
from repro.prime import PrimeClient, PrimeConfig, PrimeReplica, build_config
from repro.prime.config import PrimeTiming
from repro.api import Simulator
from repro.spines import SpinesNetwork


class KvApp:
    """A tiny deterministic replicated application for Prime tests."""

    def __init__(self):
        self.store: Dict[str, object] = {}
        self.oplog: List[tuple] = []
        self.transfer_signals: List[str] = []

    def execute_update(self, update):
        op = update.op
        self.oplog.append((update.client_id, update.client_seq, repr(op)))
        if isinstance(op, dict) and "set" in op:
            key, value = op["set"]
            self.store[key] = value
            return {"ok": True, "key": key}
        return {"ok": True}

    def snapshot(self):
        return {"store": dict(self.store), "oplog": list(self.oplog)}

    def restore(self, state):
        self.store = dict(state["store"])
        self.oplog = [tuple(entry) for entry in state["oplog"]]

    def on_state_transfer(self, outcome):
        self.transfer_signals.append(outcome)


@dataclass
class Cluster:
    sim: Simulator
    config: PrimeConfig
    keystore: KeyStore
    internal_lan: object
    external_lan: object
    internal: SpinesNetwork
    external: SpinesNetwork
    replicas: Dict[str, PrimeReplica]
    apps: Dict[str, KvApp]
    clients: Dict[str, PrimeClient] = field(default_factory=dict)
    results: Dict[str, list] = field(default_factory=dict)

    def replica(self, index: int) -> PrimeReplica:
        return self.replicas[self.config.replica_names[index]]

    def app(self, index: int) -> KvApp:
        return self.apps[self.config.replica_names[index]]

    def correct_apps(self):
        return [self.apps[name] for name, rep in self.replicas.items()
                if rep.running and rep.byzantine is None]

    def add_client(self, client_id: str, port: int = 7500) -> PrimeClient:
        host = Host(self.sim, f"{client_id}-host",
                    firewall=locked_down_firewall())
        self.external_lan.connect(host)
        daemon = self.external.add_daemon(host, f"ext.{client_id}")
        for name in self.external.daemons:
            if name != daemon.name:
                self.external.add_edge(daemon.name, name)
        self.keystore.create_signing(client_id)
        host.key_ring.install_signing(client_id,
                                      self.keystore.signing(client_id))
        results: list = []
        client = PrimeClient(self.sim, client_id, self.config, daemon, port,
                             on_result=lambda seq, res: results.append((seq, res)))
        self.clients[client_id] = client
        self.results[client_id] = results
        return client


def build_cluster(sim: Simulator, f: int = 1, k: int = 1,
                  timing: PrimeTiming = None) -> Cluster:
    config = build_config(f=f, k=k, timing=timing)
    keystore = KeyStore(sim.rng.child("keys"))
    internal_lan = Lan(sim, "internal", "192.168.101.0/24")
    external_lan = Lan(sim, "external", "192.168.102.0/24")
    internal = SpinesNetwork(sim, "internal", internal_lan, keystore, port=8100)
    external = SpinesNetwork(sim, "external", external_lan, keystore, port=8120)
    replicas: Dict[str, PrimeReplica] = {}
    apps: Dict[str, KvApp] = {}
    for name in config.replica_names:
        host = Host(sim, name, firewall=locked_down_firewall())
        internal_lan.connect(host)
        external_lan.connect(host)
        internal_daemon = internal.add_daemon(host, f"int.{name}")
        external_daemon = external.add_daemon(host, f"ext.{name}")
        app = KvApp()
        apps[name] = app
        keystore.create_signing(name)
        host.key_ring.install_signing(name, keystore.signing(name))
        replicas[name] = PrimeReplica(sim, name, config, internal_daemon,
                                      external_daemon, app)
    internal.connect_full_mesh()
    external.connect_full_mesh()
    return Cluster(sim=sim, config=config, keystore=keystore,
                   internal_lan=internal_lan, external_lan=external_lan,
                   internal=internal, external=external,
                   replicas=replicas, apps=apps)


@pytest.fixture
def sim():
    return Simulator(seed=11)


@pytest.fixture
def cluster(sim):
    """f=1, k=1 (6 replicas) cluster — the power plant configuration."""
    return build_cluster(sim, f=1, k=1)


@pytest.fixture
def small_cluster(sim):
    """f=1, k=0 (4 replicas) cluster — the red-team configuration."""
    return build_cluster(sim, f=1, k=0)
