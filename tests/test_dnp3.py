"""Tests for the DNP3 outstation and the DNP3 proxy."""

import pytest

from repro.net import Host, Lan
from repro.plc.dnp3 import (
    Crob, CROB_LATCH_OFF, CROB_LATCH_ON, Dnp3Outstation, Dnp3Request,
    Dnp3Response, FC_DIRECT_OPERATE, FC_OPERATE, FC_READ, FC_SELECT,
    FC_UNSOLICITED, IIN_NO_FUNC_SUPPORT, IIN_PARAM_ERROR,
)
from repro.plc.topology import plant_topology
from repro.api import Simulator


@pytest.fixture
def outstation_setup():
    sim = Simulator(seed=61)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    rtu_host = Host(sim, "rtu")
    master_host = Host(sim, "master")
    lan.connect(rtu_host)
    lan.connect(master_host)
    topo = plant_topology()
    outstation = Dnp3Outstation(sim, "rtu1", rtu_host, topo)
    return sim, lan, rtu_host, master_host, topo, outstation


def dnp3_exchange(sim, master_host, rtu_ip, requests):
    """Send requests, return solicited responses (unsolicited pushes
    arrive on the same connection and are filtered out here)."""
    responses = []

    def established(conn):
        for request in requests:
            conn.send(request)

    master_host.tcp_connect(
        rtu_ip, 20000, established,
        on_data=lambda c, p: responses.append(p)
        if p.function != FC_UNSOLICITED else None)
    sim.run(until=sim.now + 2.0)
    return responses


def test_class0_read_returns_all_points(outstation_setup):
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    responses = dnp3_exchange(sim, master, lan.ip_of(rtu_host),
                              [Dnp3Request(seq=1, function=FC_READ)])
    assert len(responses) == 1
    response = responses[0]
    assert response.ok
    assert response.binary_inputs == {0: True, 1: True, 2: True}
    assert all(v in (0, 100) for v in response.analog_inputs.values())


def test_direct_operate_actuates_breaker(outstation_setup):
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    point = next(p for p, b in outstation.point_map.items() if b == "B57")
    responses = dnp3_exchange(
        sim, master, lan.ip_of(rtu_host),
        [Dnp3Request(seq=2, function=FC_DIRECT_OPERATE,
                     crob=Crob(point=point, operation=CROB_LATCH_OFF))])
    assert responses[0].crob_status == "success"
    assert topo.get_breaker("B57") is False


def test_select_before_operate_sequence(outstation_setup):
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    point = next(p for p, b in outstation.point_map.items() if b == "B56")
    crob = Crob(point=point, operation=CROB_LATCH_OFF)
    responses = dnp3_exchange(
        sim, master, lan.ip_of(rtu_host),
        [Dnp3Request(seq=3, function=FC_SELECT, crob=crob),
         Dnp3Request(seq=4, function=FC_OPERATE, crob=crob)])
    assert responses[0].crob_status == "selected"
    assert responses[1].crob_status == "success"
    assert topo.get_breaker("B56") is False


def test_operate_without_select_rejected(outstation_setup):
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    point = next(p for p, b in outstation.point_map.items() if b == "B56")
    responses = dnp3_exchange(
        sim, master, lan.ip_of(rtu_host),
        [Dnp3Request(seq=5, function=FC_OPERATE,
                     crob=Crob(point=point, operation=CROB_LATCH_OFF))])
    assert responses[0].iin & IIN_PARAM_ERROR
    assert topo.get_breaker("B56") is True


def test_unknown_function_flagged(outstation_setup):
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    responses = dnp3_exchange(sim, master, lan.ip_of(rtu_host),
                              [Dnp3Request(seq=6, function=0x55)])
    assert responses[0].iin & IIN_NO_FUNC_SUPPORT


def test_bad_point_rejected(outstation_setup):
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    responses = dnp3_exchange(
        sim, master, lan.ip_of(rtu_host),
        [Dnp3Request(seq=7, function=FC_DIRECT_OPERATE,
                     crob=Crob(point=99, operation=CROB_LATCH_ON))])
    assert responses[0].iin & IIN_PARAM_ERROR


def test_unsolicited_responses_on_change(outstation_setup):
    """The DNP3 outstation pushes changed points to connected masters."""
    sim, lan, rtu_host, master, topo, outstation = outstation_setup
    received = []

    def established(conn):
        pass

    master.tcp_connect(lan.ip_of(rtu_host), 20000, established,
                       on_data=lambda c, p: received.append(p))
    sim.run(until=1.0)
    topo.set_breaker("B57", False)
    sim.run(until=2.0)
    unsolicited = [r for r in received if r.function == FC_UNSOLICITED]
    assert unsolicited
    point = next(p for p, b in outstation.point_map.items() if b == "B57")
    assert unsolicited[-1].binary_inputs[point] is False
    assert outstation.unsolicited_sent >= 1


def test_dnp3_proxy_end_to_end():
    """Full path: DNP3 outstation -> proxy -> Prime masters -> HMI feed,
    and commands back down via f+1-agreed CROBs."""
    import sys, os
    sys.path.insert(0, os.path.dirname(__file__))
    from conftest import build_cluster
    from repro.scada.dnp3_proxy import Dnp3PlcProxy
    from repro.scada.proxy import wire_direct

    sim = Simulator(seed=62)
    cluster = build_cluster(sim, f=1, k=1)
    # Bind masters: reuse cluster replicas but swap the KvApp for the
    # real ScadaMaster so directives/feeds flow.
    from repro.scada.master import ScadaMaster
    for name, replica in cluster.replicas.items():
        master = ScadaMaster(name)
        master.bind(replica)
        replica.app = master
        cluster.apps[name] = master

    proxy_host = Host(sim, "dnp3-proxy-host")
    cluster.external_lan.connect(proxy_host)
    daemon = cluster.external.add_daemon(proxy_host, "ext.dnp3proxy")
    for other in cluster.external.daemons:
        if other != daemon.name:
            cluster.external.add_edge(daemon.name, other)
    cluster.keystore.create_signing("dnp3-proxy")
    proxy_host.key_ring.install_signing(
        "dnp3-proxy", cluster.keystore.signing("dnp3-proxy"))

    rtu_host = Host(sim, "rtu-host")
    wire_direct(sim, proxy_host, rtu_host, "10.88.0.0/30")
    topo = plant_topology()
    outstation = Dnp3Outstation(sim, "rtu1", rtu_host, topo)
    proxy = Dnp3PlcProxy(sim, "dnp3-proxy", proxy_host, daemon,
                         cluster.config)
    proxy.attach_outstation(outstation, rtu_host.interfaces[-1].ip)
    proxy.register_with_masters()
    sim.run(until=4.0)

    # Status flowed up into the replicated masters.
    for name in cluster.config.replica_names:
        assert cluster.apps[name].plc_state.get("rtu1", {}).get("B57") is True

    # Command flows down: a master directive quorum triggers the CROB.
    from repro.scada.events import breaker_command_op
    client = cluster.add_client("operator")
    client.submit(breaker_command_op("rtu1", "B57", False))
    sim.run(until=8.0)
    assert topo.get_breaker("B57") is False
    assert proxy.commands_applied == 1

    # The unsolicited report raced the next poll: masters saw the change.
    assert any(cluster.apps[name].plc_state["rtu1"]["B57"] is False
               for name in cluster.config.replica_names)
