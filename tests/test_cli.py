"""Tests for the spire-sim command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_quickstart_command():
    code, output = run_cli(["--seed", "3", "quickstart"])
    assert code == 0
    assert "replicas" in output
    assert "views consistent: True" in output


def test_breach_command():
    code, output = run_cli(["--seed", "3", "breach"])
    assert code == 0
    assert "rebuilt from field devices: True" in output


def test_chaos_list_command():
    code, output = run_cli(["chaos", "--list"])
    assert code == 0
    assert "baseline" in output
    assert "byzantine-storm" in output


def test_chaos_command_produces_report(tmp_path):
    import json

    report_path = tmp_path / "report.json"
    code, _output = run_cli(["--seed", "1", "chaos",
                             "--scenarios", "baseline,byzantine-storm",
                             "--duration", "12.0",
                             "--output", str(report_path)])
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["passed"]
    baseline = report["scenarios"]["baseline"]
    assert baseline["violations"] == 0
    storm = report["scenarios"]["byzantine-storm"]
    assert storm["expect"] == "violation"
    assert storm["violations"] > 0
