"""Tests for the spire-sim command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_quickstart_command():
    code, output = run_cli(["--seed", "3", "quickstart"])
    assert code == 0
    assert "replicas" in output
    assert "views consistent: True" in output


def test_breach_command():
    code, output = run_cli(["--seed", "3", "breach"])
    assert code == 0
    assert "rebuilt from field devices: True" in output


def test_chaos_list_command():
    code, output = run_cli(["chaos", "--list"])
    assert code == 0
    assert "baseline" in output
    assert "byzantine-storm" in output


def test_chaos_command_produces_report(tmp_path):
    import json

    report_path = tmp_path / "report.json"
    code, _output = run_cli(["--seed", "1", "chaos",
                             "--scenarios", "baseline,byzantine-storm",
                             "--duration", "12.0",
                             "--output", str(report_path)])
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["passed"]
    baseline = report["scenarios"]["baseline"]
    assert baseline["violations"] == 0
    storm = report["scenarios"]["byzantine-storm"]
    assert storm["expect"] == "violation"
    assert storm["violations"] > 0


def test_chaos_command_writes_deployment_report_and_dumps(tmp_path):
    import json

    report_path = tmp_path / "deployment.md"
    dumps_dir = tmp_path / "dumps"
    code, _output = run_cli(["--seed", "3", "chaos",
                             "--scenarios", "byzantine-storm",
                             "--duration", "12.0",
                             "--report", str(report_path),
                             "--dumps-dir", str(dumps_dir)])
    assert code == 0
    markdown = report_path.read_text()
    assert markdown.startswith("# Spire deployment report")
    assert "byzantine-storm" in markdown
    dump_paths = sorted(dumps_dir.glob("byzantine-storm-seed*.json"))
    assert dump_paths, "no automatic black-box dumps written"
    dump = json.loads(dump_paths[0].read_text())
    assert dump["fault_ids"]
    assert dump["reason"].startswith("faults.violation")


def test_report_command_renders_all_formats(tmp_path):
    import json

    json_path = tmp_path / "report.json"
    md_path = tmp_path / "report.md"
    html_path = tmp_path / "report.html"
    code, _output = run_cli(["--seed", "1", "report", "--skip-plant",
                             "--scenarios", "byzantine-storm",
                             "--seeds", "1", "--duration", "12.0",
                             "--output", str(json_path),
                             "--markdown", str(md_path),
                             "--html", str(html_path)])
    assert code == 0
    document = json.loads(json_path.read_text())
    assert document["meta"]["generator"] == "spire-sim report"
    assert "jobs" not in document["meta"]          # determinism witness
    campaign = document["campaign"]
    assert campaign["scenarios"]["byzantine-storm"]["violations"] > 0
    assert md_path.read_text().startswith("# Spire deployment report")
    assert html_path.read_text().startswith("<!DOCTYPE html>")


def test_report_command_plant_only_prints_markdown():
    code, output = run_cli(["--seed", "1", "report", "--skip-campaign",
                            "--plant-duration", "14"])
    assert code == 0
    assert output.startswith("# Spire deployment report")
    assert "Reaction-time distributions" in output
    assert "Per-hop latency" in output
