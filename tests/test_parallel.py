"""The parallel sweep engine: determinism, telemetry merging, and
crashed/hung-worker containment."""

import pytest

from repro.faults import report_digest, report_to_json, run_campaign
from repro.parallel import MAX_ATTEMPTS, UnitResult, WorkerPool, WorkUnit
from repro.telemetry.metrics import Histogram, MetricsRegistry


# ----------------------------------------------------------------------
# Telemetry merge protocol
# ----------------------------------------------------------------------
def test_merged_histogram_quantiles_match_single_registry():
    """Quantiles over merged shards == quantiles over the union in one
    histogram (merge pools raw samples; it never averages quantiles)."""
    samples = [0.001 * i for i in range(100)] + [1.5, 2.5, 9.0]
    single = Histogram("latency")
    shards = [Histogram("latency", f"w{i}") for i in range(3)]
    for i, value in enumerate(samples):
        single.observe(value)
        shards[i % 3].observe(value)
    merged = Histogram("latency", "*")
    for shard in shards:
        merged.merge(shard)
    assert merged.count == single.count
    assert merged.sum == pytest.approx(single.sum)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert merged.quantile(q) == pytest.approx(single.quantile(q))
    assert merged.summary() == pytest.approx(single.summary())


def test_registry_merge_snapshot_counters_gauges_histograms():
    ours = MetricsRegistry()
    ours.counter("events", "a").inc(3)
    ours.gauge("depth", "a").set(5.0)
    ours.histogram("lat", "a").observe(1.0)

    theirs = MetricsRegistry(clock=lambda: 2.0)
    theirs.counter("events", "a").inc(4)
    theirs.counter("events", "b").inc(1)
    theirs.gauge("depth", "a").set(9.0)
    theirs.histogram("lat", "a").observe(3.0)

    ours.merge_snapshot(theirs.state_snapshot())
    assert ours.counter("events", "a").value == 7
    assert ours.counter("events", "b").value == 1
    # The later-updated gauge level wins; min/max pool.
    assert ours.gauge("depth", "a").value == 9.0
    assert ours.gauge("depth", "a").min_seen == 5.0
    assert ours.gauge("depth", "a").max_seen == 9.0
    merged = ours.histogram("lat", "a")
    assert merged.count == 2 and merged.max == 3.0


def test_registry_merge_rejects_kind_conflicts():
    ours = MetricsRegistry()
    ours.counter("x")
    with pytest.raises(TypeError):
        ours.merge_snapshot([{"kind": "gauge", "name": "x", "component": "",
                              "value": 1.0, "min": None, "max": None,
                              "updated_at": 0.0}])
    with pytest.raises(ValueError):
        ours.merge_snapshot([{"kind": "span", "name": "y"}])


# ----------------------------------------------------------------------
# Pool semantics
# ----------------------------------------------------------------------
def test_results_ordered_by_unit_index_regardless_of_jobs():
    cells = [{"value": i} for i in range(9, -1, -1)]
    for jobs in (1, 3):
        pool = WorkerPool(jobs=jobs)
        results = pool.run([
            WorkUnit("repro.parallel.testing:square_unit", cell, uid=str(i))
            for i, cell in enumerate(cells)])
        assert [r.index for r in results] == list(range(10))
        assert [r.value for r in results] == [(9 - i) ** 2 for i in range(10)]
        assert all(r.ok for r in results)


def test_crashed_worker_unit_retried_once_then_failed_without_stall():
    """A unit that hard-kills its worker is retried once on a fresh
    worker, then reported failed; innocent units all complete."""
    units = [WorkUnit("repro.parallel.testing:echo_unit", {"value": i},
                      uid=f"ok{i}") for i in range(4)]
    units.insert(1, WorkUnit("repro.parallel.testing:crash_unit", {},
                             uid="poison"))
    pool = WorkerPool(jobs=2, name="crashy")
    results = pool.run(units)
    assert len(results) == 5
    poison = results[1]
    assert not poison.ok
    assert poison.attempts == MAX_ATTEMPTS
    assert "exit" in poison.error
    with pytest.raises(RuntimeError):
        poison.unwrap()
    survivors = [r for r in results if r.uid != "poison"]
    assert all(r.ok for r in survivors)
    metrics = pool.metrics
    assert metrics.counter("parallel.units_failed", "crashy").value == 1
    assert metrics.counter("parallel.units_completed", "crashy").value == 4
    # The poisoned unit cost (at least) one respawned worker.
    assert metrics.counter("parallel.workers_crashed", "crashy").value >= 2


def test_hung_unit_times_out_retried_then_failed():
    units = [WorkUnit("repro.parallel.testing:hang_unit",
                      {"value": 0, "seconds": 60.0}, uid="hang"),
             WorkUnit("repro.parallel.testing:echo_unit", {"value": 1},
                      uid="ok")]
    pool = WorkerPool(jobs=2, timeout=0.4, name="hangy")
    results = pool.run(units)
    assert not results[0].ok and "timed out" in results[0].error
    assert results[0].attempts == MAX_ATTEMPTS
    assert results[1].ok
    assert pool.metrics.counter("parallel.units_timeout", "hangy").value >= 1


def test_inline_jobs1_retries_exceptions_then_fails():
    pool = WorkerPool(jobs=1, name="inline")
    results = pool.map("repro.parallel.testing:failing_unit", [{"value": 3}])
    assert results == [UnitResult(index=0, uid="", ok=False,
                                  error="ValueError: unit 3 is poisoned",
                                  attempts=MAX_ATTEMPTS)]
    assert pool.metrics.counter("parallel.units_retried", "inline").value == 1


def test_callable_units_work_under_fork():
    from repro.parallel.testing import square_unit
    pool = WorkerPool(jobs=2)
    results = pool.run([WorkUnit(square_unit, {"value": 5})])
    assert results[0].ok and results[0].value == 25


def test_on_result_fires_once_per_unit_inline_and_pooled():
    """The completion callback (the campaign-checkpoint hook) sees every
    final result exactly once — successes and exhausted-retry failures —
    whatever the jobs count."""
    units = [WorkUnit("repro.parallel.testing:square_unit", {"value": i},
                      uid=f"u{i}") for i in range(6)]
    units.append(WorkUnit("repro.parallel.testing:failing_unit",
                          {"value": 9}, uid="bad"))
    for jobs in (1, 3):
        seen = []
        results = WorkerPool(jobs=jobs).run(units,
                                            on_result=seen.append)
        assert sorted(r.uid for r in seen) == sorted(u.uid for u in units)
        assert {r.uid: r.ok for r in seen} == {r.uid: r.ok for r in results}
        assert not dict((r.uid, r.ok) for r in seen)["bad"]


# ----------------------------------------------------------------------
# Campaign determinism (the consumer contract)
# ----------------------------------------------------------------------
def test_campaign_reports_byte_identical_jobs1_vs_jobs4():
    kwargs = dict(scenarios=["baseline"], seeds=[4, 1, 2, 3],
                  duration=5.0)
    serial = run_campaign(jobs=1, **kwargs)
    parallel = run_campaign(jobs=4, **kwargs)
    assert report_to_json(serial) == report_to_json(parallel)
    assert report_digest(serial) == report_digest(parallel)
    assert serial["passed"]
    # Seeds are sorted for diff-stability, and the merged campaign-level
    # quantiles pool every cell's samples.
    assert serial["config"]["seeds"] == [1, 2, 3, 4]
    runs = serial["scenarios"]["baseline"]["runs"]
    assert [run["seed"] for run in runs] == [1, 2, 3, 4]
    total = sum(run["confirm_latency"]["samples"] for run in runs)
    assert serial["confirm_latency"]["samples"] == total
    assert serial["scenarios"]["baseline"]["confirm_latency"]["samples"] == total


def test_campaign_parallel_telemetry_counters():
    registry = MetricsRegistry()
    run_campaign(scenarios=["baseline"], seeds=[1, 2], duration=5.0,
                 jobs=2, metrics=registry)
    assert registry.counter("parallel.units_dispatched", "campaign").value == 2
    assert registry.counter("parallel.units_completed", "campaign").value == 2
    assert registry.counter("parallel.units_failed", "campaign").value == 0
    wall = registry.histogram("parallel.unit_wall_seconds", "campaign")
    assert wall.count == 2 and wall.min > 0.0
