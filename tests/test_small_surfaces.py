"""Coverage for small public surfaces: wire sizes, captures, screens,
OS profiles, LAN helpers, scenario reports, measurement jitter."""

import pytest

from repro.api import Simulator


# ---------------------------------------------------------------------------
# Message wire sizes (bandwidth accounting feeds links and MANA)
# ---------------------------------------------------------------------------
def test_prime_message_wire_sizes_positive():
    from repro.prime.messages import (
        AruExchange, ClientUpdate, CommitMsg, NewLeaderMsg, PoAckBatch,
        PoRequestBatch, PrePrepare, PrepareMsg, ReconcRequest, Reply,
        SignedPrimeMessage, StateRequest, UpdateRequest,
    )
    update = ClientUpdate(client_id="c", client_seq=1, op={"x": 1})
    messages = [
        update,
        PoRequestBatch(originator="r1#0", start_seq=1, updates=[update]),
        PoAckBatch(acker="r1", acks=[("r1#0", 1, b"d" * 32)],
                   po_aru={"r1#0": 1}),
        PrePrepare(view=0, gseq=1, matrix={"r1": {"r1#0": 1}}),
        PrepareMsg(view=0, gseq=1, digest=b"d", replica="r1"),
        CommitMsg(view=0, gseq=1, digest=b"d", replica="r1"),
        NewLeaderMsg(new_view=1, replica="r1", last_executed=0, prepared={}),
        ReconcRequest(replica="r1", from_gseq=1, to_gseq=5),
        UpdateRequest(replica="r1", slots=[("r1#0", 1)]),
        AruExchange(replica="r1", last_executed=3, view=1),
        StateRequest(replica="r1", nonce=1),
        Reply(replica="r1", client_id="c", client_seq=1, result={"ok": 1}),
        SignedPrimeMessage(sender="r1", body=update),
    ]
    for message in messages:
        assert message.wire_size() > 0


def test_overlay_message_sizes_scale_with_payload():
    from repro.spines.messages import LinkEnvelope, OverlayMessage
    small = OverlayMessage(src=("a", 1), dst=("b", 2), service="reliable",
                           payload="x", seq=1, src_daemon="a")
    big = OverlayMessage(src=("a", 1), dst=("b", 2), service="reliable",
                         payload="x" * 1000, seq=2, src_daemon="a")
    assert big.wire_size() > small.wire_size()
    envelope = LinkEnvelope(sender="a", kind="data", body=big)
    assert envelope.wire_size() > big.wire_size() - 1


# ---------------------------------------------------------------------------
# Capture helpers
# ---------------------------------------------------------------------------
def test_capture_between_and_subscribe():
    from repro.net.tap import Capture, PacketRecord
    capture = Capture("net")
    streamed = []
    capture.subscribe(streamed.append)
    for t in (1.0, 2.0, 3.0):
        capture._ingest(PacketRecord(
            time=t, network="net", ethertype="ipv4", src_mac="m",
            dst_mac="m2", size=100))
    assert len(capture) == 3
    assert len(capture.between(1.5, 3.0)) == 1
    assert len(streamed) == 3


# ---------------------------------------------------------------------------
# OS profiles
# ---------------------------------------------------------------------------
def test_osprofile_with_extra_service():
    from repro.net import centos_minimal_latest
    base = centos_minimal_latest()
    extended = base.with_extra_service(8443, "mgmt")
    assert 8443 in extended.os_service_ports
    assert 8443 not in base.os_service_ports   # immutable original
    assert extended.hardened


# ---------------------------------------------------------------------------
# LAN helpers
# ---------------------------------------------------------------------------
def test_lan_lookup_errors_and_unharden():
    from repro.net import Host, Lan
    sim = Simulator(seed=300)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    inside = Host(sim, "inside")
    outside = Host(sim, "outside")
    lan.connect(inside)
    with pytest.raises(KeyError):
        lan.link_of(outside)
    with pytest.raises(KeyError):
        lan.ip_of(outside)
    lan.harden()
    assert lan.switch.static_mode
    lan.unharden()
    assert not lan.switch.static_mode
    assert not lan.interface_of(inside).arp.static_mode


def test_switch_out_of_ports():
    from repro.net import Host, Lan
    sim = Simulator(seed=301)
    lan = Lan(sim, "lan", "10.0.0.0/24", ports=2)
    lan.connect(Host(sim, "a"))
    lan.connect(Host(sim, "b"))
    with pytest.raises(RuntimeError):
        lan.connect(Host(sim, "c"))


# ---------------------------------------------------------------------------
# Scenario report structure
# ---------------------------------------------------------------------------
def test_scenario_report_render_and_lookup():
    from repro.redteam.scenarios import ScenarioReport
    report = ScenarioReport("demo")
    report.add("thing one", True, "it worked", extra=1)
    report.add("thing two", False, "blocked")
    assert report.achieved("thing one") is True
    assert report.achieved("thing two") is False
    with pytest.raises(KeyError):
        report.achieved("missing")
    rendered = report.render()
    assert "ATTACKER SUCCEEDED" in rendered and "defended" in rendered
    assert report.stages[0].observations == {"extra": 1}


# ---------------------------------------------------------------------------
# Measurement device jitter
# ---------------------------------------------------------------------------
def test_measurement_flips_are_jittered():
    from repro.api import MeasurementDevice
    from repro.plc import plant_topology
    sim = Simulator(seed=302)
    topo = plant_topology()
    device = MeasurementDevice(sim, topo, "B57", sensors={}, period=2.0,
                               jitter=0.5)
    sim.run(until=20.0)
    times = [s.flip_time for s in device.samples]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert len(gaps) >= 5
    assert len({round(g, 6) for g in gaps}) > 1   # not phase-locked
    assert all(1.4 <= g <= 2.6 for g in gaps)


# ---------------------------------------------------------------------------
# HMI screen unicode mode
# ---------------------------------------------------------------------------
def test_hmi_screen_unicode_symbols():
    from repro.plc import plant_topology
    from repro.scada.visualization import HmiScreen
    screen = HmiScreen(plant_topology(), ascii_mode=False)
    output = screen.render()
    assert "▣" in output


# ---------------------------------------------------------------------------
# EventLog clock binding
# ---------------------------------------------------------------------------
def test_eventlog_bind_clock():
    from repro.util import EventLog
    log = EventLog()
    now = {"t": 0.0}
    log.bind_clock(lambda: now["t"])
    now["t"] = 7.5
    record = log.log("s", "c", "m")
    assert record.time == 7.5


# ---------------------------------------------------------------------------
# Subnet exhaustion and allocation
# ---------------------------------------------------------------------------
def test_subnet_allocation_and_containment():
    from repro.net import Subnet
    subnet = Subnet("10.5.0.0/30")
    first = subnet.allocate()
    second = subnet.allocate()
    assert first != second
    assert subnet.contains(first)
    assert not subnet.contains("10.6.0.1")
    with pytest.raises(StopIteration):
        subnet.allocate()   # /30 has exactly two host addresses
