"""The invariant monitors themselves are under test here: each one
must flag a seeded violation when its guarantee is deliberately broken,
and stay silent on clean runs.  Agreement divergence cannot be produced
through the replica's byzantine modes (they are all omission-style), so
it is forged by executing a fabricated update on one replica's wrapped
app directly.
"""

from repro.api import Simulator
from repro.faults import ChaosHarness, FaultPlan, MonitorSuite
from repro.prime.messages import ClientUpdate


def make_suite(seed=11, with_recovery=False, run_to=2.0):
    sim = Simulator(seed=seed)
    harness = ChaosHarness(sim, f=1, k=1, with_recovery=with_recovery)
    suite = MonitorSuite(sim, harness)
    for client in harness.clients:
        suite.watch_client(client)
    suite.start()
    sim.run(until=run_to)
    return sim, harness, suite


def test_clean_run_produces_no_violations():
    sim, harness, suite = make_suite()
    harness.start_workload(updates=15, start=2.2, interval=0.3)
    sim.run(until=14.0)
    assert harness.confirmed_count() == len(harness.submitted) > 0
    assert suite.passed(), [v.snapshot() for v in suite.violations]


def test_agreement_monitor_flags_forged_divergence():
    sim, harness, suite = make_suite()
    harness.start_workload(updates=8, start=2.2, interval=0.3)
    sim.run(until=6.0)
    # Forge: one replica executes a *different* op under a (client, seq)
    # the client really submitted — validity stays quiet, but the digest
    # log diverges from every other replica at that position.
    client = harness.clients[0]
    victim = harness.config.replica_names[0]
    forged = ClientUpdate(client_id=client.client_id, client_seq=1,
                          op={"set": ("forged", -1)},
                          reply_to=client.session.address)
    harness.replicas[victim].app.execute_update(forged)
    sim.run(until=8.0)
    violations = suite.violations_of("agreement")
    assert violations, "forged divergence went undetected"
    assert victim in violations[0].detail


def test_validity_monitor_flags_unsubmitted_update():
    sim, harness, suite = make_suite()
    harness.start_workload(updates=5, start=2.2, interval=0.3)
    sim.run(until=5.0)
    victim = harness.config.replica_names[1]
    ghost = ClientUpdate(client_id="nobody", client_seq=1,
                         op={"set": ("ghost", 0)}, reply_to=None)
    harness.replicas[victim].app.execute_update(ghost)
    sim.run(until=6.0)
    violations = suite.violations_of("validity")
    assert violations
    assert "nobody" in violations[0].detail


def test_validity_monitor_flags_future_sequence():
    sim, harness, suite = make_suite()
    client = harness.clients[0]
    victim = harness.config.replica_names[2]
    premature = ClientUpdate(client_id=client.client_id, client_seq=999,
                             op={"set": ("early", 1)},
                             reply_to=client.session.address)
    harness.replicas[victim].app.execute_update(premature)
    sim.run(until=3.0)
    violations = suite.violations_of("validity")
    assert violations
    assert "999" in violations[0].detail


def test_liveness_monitor_flags_stalled_confirmation():
    sim, harness, suite = make_suite()
    # Take out enough replicas that the ordering quorum (2f+k+1 = 4 of
    # 6) cannot form; the submitted update can never confirm.
    for name in harness.config.replica_names[:3]:
        harness.replicas[name].crash()
    harness.clients[0].submit({"set": ("stuck", 1)})
    sim.run(until=15.0)
    violations = suite.violations_of("liveness")
    assert violations
    assert "unconfirmed" in violations[0].detail


def test_liveness_monitor_silent_when_confirmations_flow():
    sim, harness, suite = make_suite()
    harness.start_workload(updates=10, start=2.2, interval=0.3)
    sim.run(until=12.0)
    assert not suite.violations_of("liveness")


def test_recovery_budget_monitor_flags_collision():
    sim, harness, suite = make_suite(with_recovery=False)
    harness.start_recovery(period=30.0, downtime=1.0)
    scheduler = harness.recovery
    # Force k+1 = 2 simultaneous recoveries, bypassing the scheduler's
    # own pacing.
    scheduler.begin_recovery(scheduler.targets[0])
    scheduler.begin_recovery(scheduler.targets[1])
    sim.run(until=4.0)
    violations = suite.violations_of("recovery-budget")
    assert violations
    assert "exceed k=1" in violations[0].detail


def test_recovery_budget_monitor_silent_within_k():
    sim, harness, suite = make_suite(with_recovery=True)
    harness.start_workload(updates=10, start=2.2, interval=0.3)
    sim.run(until=16.0)
    assert harness.recovery.recoveries_completed > 0
    assert not suite.violations_of("recovery-budget")


def test_violations_carry_fault_attribution():
    """A violation fired while a plan's faults are active names them."""
    sim = Simulator(seed=23)
    harness = ChaosHarness(sim, f=1, k=1)
    plan = FaultPlan("storm", allow_over_budget=True)
    for index in range(2):
        plan.byzantine(at=3.0 + index * 0.2, mode="crash")
    plan.crash(at=3.6, duration=None)
    armed = plan.arm(sim, harness)
    suite = MonitorSuite(sim, harness, armed=armed)
    for client in harness.clients:
        suite.watch_client(client)
    suite.start()
    harness.start_workload(updates=20, start=0.2, interval=0.3)
    sim.run(until=15.0)
    violations = suite.violations_of("liveness")
    assert violations
    first = violations[0]
    assert first.over_budget
    assert any(fid.startswith("storm:") for fid in first.active_faults)


def test_recording_app_log_survives_state_transfer():
    """A replica that rejoins via state transfer inherits its donor's
    execution log, so the prefix check stays meaningful."""
    sim, harness, suite = make_suite()
    harness.start_workload(updates=10, start=2.2, interval=0.3)
    victim = harness.config.replica_names[0]
    sim.run(until=4.0)
    harness.replicas[victim].crash()
    sim.run(until=6.0)
    harness.replicas[victim].recover()
    sim.run(until=20.0)
    assert suite.passed(), [v.snapshot() for v in suite.violations]
    # The victim's log caught back up through transfer + execution.
    longest = max(len(log) for log in suite.exec_logs.values())
    assert len(suite.exec_logs[victim]) == longest > 0


def test_monitor_suite_stop_unwraps_apps():
    sim, harness, suite = make_suite()
    suite.stop()
    from repro.faults import RecordingApp
    for replica in harness.replicas.values():
        assert not isinstance(replica.app, RecordingApp)
