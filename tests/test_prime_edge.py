"""Prime edge cases: equivocation, partitions, reconciliation, view
evidence, and content fetching."""


from repro.crypto.auth import sign_payload
from repro.prime import ClientUpdate
from repro.prime.messages import PoRequestBatch


def make_signed_update(cluster, client_id, seq, op):
    cluster.keystore.create_signing(client_id)
    ring = cluster.keystore.ring_for(signing_principals=[client_id])
    update = ClientUpdate(client_id=client_id, client_seq=seq, op=op)
    return ClientUpdate(client_id=client_id, client_seq=seq, op=op,
                        signature=sign_payload(ring, client_id,
                                               update.signed_view()))


def test_equivocating_originator_cannot_certify_two_contents(cluster):
    """An originator sending different client updates for the same
    preorder slot to different replicas: at most one content can gather
    a 2f+k+1 certificate (quorum intersection)."""
    update_a = make_signed_update(cluster, "client-a", 1, {"set": ("x", 1)})
    update_b = make_signed_update(cluster, "client-b", 1, {"set": ("x", 2)})
    evil = cluster.replica(0)
    slot_key = (evil.originator_id, 1)
    # Deliver conflicting po-requests directly to split the replicas.
    batch_a = PoRequestBatch(originator=evil.originator_id, start_seq=1,
                             updates=[update_a])
    batch_b = PoRequestBatch(originator=evil.originator_id, start_seq=1,
                             updates=[update_b])
    names = cluster.config.replica_names
    for name in names[1:4]:
        cluster.replicas[name]._po_request_in(evil.name, batch_a)
    for name in names[4:]:
        cluster.replicas[name]._po_request_in(evil.name, batch_b)
    cluster.sim.run(until=3.0)
    certified = set()
    for name in names[1:]:
        slot = cluster.replicas[name].po_slots.get(slot_key)
        if slot is not None and slot.certified is not None:
            certified.add(slot.certified)
    assert len(certified) <= 1, "two contents certified for one slot"


def test_po_request_under_foreign_incarnation_rejected(cluster):
    """A replica may only introduce updates under its own originator id."""
    update = make_signed_update(cluster, "client-x", 1, {"set": ("y", 1)})
    victim_incarnation = cluster.replica(1).originator_id
    batch = PoRequestBatch(originator=victim_incarnation, start_seq=99,
                           updates=[update])
    target = cluster.replica(2)
    target._po_request_in(cluster.replica(0).name, batch)   # wrong sender
    assert (victim_incarnation, 99) not in target.po_slots


def test_partitioned_replica_catches_up_via_reconciliation(cluster):
    client = cluster.add_client("hmi")
    lagger = cluster.replica(5)
    link = cluster.internal_lan.link_of(lagger.internal_daemon.host)
    link.set_up(False)
    for i in range(5):
        client.submit({"set": (f"p{i}", i)})
    cluster.sim.run(until=3.0)
    assert cluster.app(5).store == {}
    link.set_up(True)
    cluster.sim.run(until=8.0)
    for i in range(5):
        assert cluster.app(5).store.get(f"p{i}") == i
    assert lagger.last_executed >= 1


def test_partition_heals_with_consistent_order(cluster):
    """Updates executed during and after a partition appear in the same
    order at the healed replica as everywhere else."""
    client = cluster.add_client("hmi")
    lagger = cluster.replica(4)
    link = cluster.internal_lan.link_of(lagger.internal_daemon.host)
    for i in range(3):
        client.submit({"set": (f"pre{i}", i)})
    cluster.sim.run(until=2.0)
    link.set_up(False)
    for i in range(3):
        client.submit({"set": (f"mid{i}", i)})
    cluster.sim.run(until=4.0)
    link.set_up(True)
    for i in range(3):
        client.submit({"set": (f"post{i}", i)})
    cluster.sim.run(until=10.0)
    logs = {tuple(cluster.apps[name].oplog)
            for name in cluster.config.replica_names}
    assert len(logs) == 1
    assert len(next(iter(logs))) == 9


def test_view_evidence_heals_stale_view(cluster):
    """A replica that missed a view change adopts the evident view from
    peer gossip (f+1 claims)."""
    client = cluster.add_client("hmi")
    client.submit({"set": ("warm", 1)})
    cluster.sim.run(until=2.0)
    # Take one replica offline while the others rotate views.
    sleeper = cluster.replica(3)
    link = cluster.internal_lan.link_of(sleeper.internal_daemon.host)
    link.set_up(False)
    leader = cluster.replicas[cluster.config.leader_of(0)]
    leader.byzantine = "mute-leader"
    client.submit({"set": ("force-rotation", 1)})
    cluster.sim.run(until=6.0)
    others_view = max(rep.view for name, rep in cluster.replicas.items()
                      if rep is not sleeper)
    assert others_view >= 1
    assert sleeper.view == 0
    link.set_up(True)
    cluster.sim.run(until=12.0)
    assert sleeper.view >= 1


def test_missing_update_content_fetched_before_execution(cluster):
    """A replica that has the ordering but not an update's content must
    fetch it (f+1 matching) before executing."""
    client = cluster.add_client("hmi")
    victim = cluster.replica(2)
    # Drop the content from victim's preorder store after certification.
    client.submit({"set": ("fetched", 42)})
    cluster.sim.run(until=0.02)   # po-requests in flight

    # Surgically remove any stored content at the victim.
    def strip():
        for slot in victim.po_slots.values():
            slot.updates.clear()
    cluster.sim.schedule(0.05, strip)
    cluster.sim.run(until=4.0)
    assert cluster.app(2).store.get("fetched") == 42


def test_client_gives_up_after_max_retries(cluster):
    """With the whole system down, a client stops retrying eventually.

    The horizon covers the full capped exponential-backoff schedule:
    1+2+4+8+8... seconds with up to +20% jitter across 10 retries.
    """
    for i in range(6):
        cluster.replica(i).crash()
    client = cluster.add_client("hmi")
    client.submit({"set": ("void", 1)})
    cluster.sim.run(until=100.0)
    assert client.pending == {}
    assert 1 not in client.confirmed


def test_client_retries_back_off_exponentially(cluster):
    """Retransmission gaps grow (doubling toward the cap, with ±20%
    jitter) and every retry is counted in telemetry."""
    from repro.prime.client import CLIENT_RETRY, CLIENT_RETRY_CAP

    for i in range(6):
        cluster.replica(i).crash()
    client = cluster.add_client("hmi")
    sent_at = []
    original = client._transmit
    client._transmit = lambda update: (sent_at.append(cluster.sim.now),
                                       original(update))
    client.submit({"set": ("void", 1)})
    cluster.sim.run(until=25.0)
    gaps = [b - a for a, b in zip(sent_at, sent_at[1:])]
    assert len(gaps) >= 4
    for i, gap in enumerate(gaps):
        expected = min(CLIENT_RETRY * (2 ** i), CLIENT_RETRY_CAP)
        # The 0.25s retry tick quantises the jittered deadline upward.
        assert expected * 0.8 <= gap <= expected * 1.2 + 0.25, \
            f"gap {i}: {gap}"
    assert cluster.sim.metrics.total("prime.client.retries") == len(gaps)


def test_replies_require_matching_results(cluster):
    """A single replica sending a wrong reply cannot make the client
    accept it."""
    client = cluster.add_client("hmi")
    seq = client.submit({"set": ("honest", 1)})
    # One replica lies: intercept its app to return garbage.
    liar_app = cluster.app(0)
    original = liar_app.execute_update
    liar_app.execute_update = lambda update: {"ok": False, "evil": True}
    cluster.sim.run(until=3.0)
    liar_app.execute_update = original
    assert client.confirmed[seq] == {"ok": True, "key": "honest"}


def test_duplicate_client_seq_executes_once_across_originators(cluster):
    """The same signed update introduced by every replica executes once."""
    update = make_signed_update(cluster, "dup-client", 7, {"set": ("d", 1)})
    for name in cluster.config.replica_names:
        cluster.replicas[name].submit_update(update)
    cluster.sim.run(until=4.0)
    for app in cluster.apps.values():
        count = sum(1 for (cid, cseq, _) in app.oplog
                    if cid == "dup-client" and cseq == 7)
        assert count == 1


def test_recovered_replica_view_adoption(cluster):
    """A replica recovering into a cluster that moved to a later view
    installs a recent view from its donors."""
    client = cluster.add_client("hmi")
    client.submit({"set": ("a", 1)})
    cluster.sim.run(until=2.0)
    leader = cluster.replicas[cluster.config.leader_of(0)]
    leader.byzantine = "mute-leader"
    client.submit({"set": ("b", 2)})
    cluster.sim.run(until=5.0)
    victim = cluster.replica(3)
    if victim is leader:
        victim = cluster.replica(4)
    victim.crash()
    cluster.sim.run(until=6.0)
    victim.recover()
    cluster.sim.run(until=10.0)
    assert victim.state == "normal"
    assert victim.view >= 1
