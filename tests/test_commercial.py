"""Tests for the commercial SCADA baseline (primary-backup, Fig. 1)."""

import pytest

from repro.net import Host, Lan
from repro.plc import PlcDevice, redteam_topology
from repro.redteam.commercial import (
    CommercialHmi, CommercialScadaServer, OperatorCommand, StatePush,
    COMMAND_PORT, STATE_PUSH_PORT,
)
from repro.api import Simulator


@pytest.fixture
def setup():
    sim = Simulator(seed=41)
    lan = Lan(sim, "ops", "10.0.0.0/24")
    topology = redteam_topology()
    plc_host = Host(sim, "plc")
    lan.connect(plc_host)
    PlcDevice(sim, "plc", plc_host, topology, physical=True)
    hosts = {}
    for name in ("primary", "backup", "hmi"):
        hosts[name] = Host(sim, name)
        lan.connect(hosts[name])
    primary = CommercialScadaServer(
        sim, "primary", hosts["primary"], lan.ip_of(plc_host),
        lan.ip_of(hosts["hmi"]), primary=True,
        peer_ip=lan.ip_of(hosts["backup"]))
    backup = CommercialScadaServer(
        sim, "backup", hosts["backup"], lan.ip_of(plc_host),
        lan.ip_of(hosts["hmi"]), primary=False,
        peer_ip=lan.ip_of(hosts["primary"]))
    names = topology.breaker_names()
    primary.set_coil_names(names)
    backup.set_coil_names(names)
    hmi = CommercialHmi(sim, "hmi", hosts["hmi"],
                        lan.ip_of(hosts["primary"]))
    return sim, lan, topology, primary, backup, hmi, hosts


def test_polling_reaches_hmi(setup):
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=4.0)
    assert hmi.breaker_state("B10-1") is True
    assert hmi.pushes_received >= 2


def test_operator_command_actuates_breaker(setup):
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=3.0)
    hmi.command_breaker("B21", False)
    sim.run(until=7.0)
    assert topology.get_breaker("B21") is False
    assert hmi.breaker_state("B21") is False


def test_backup_remains_passive_while_primary_alive(setup):
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=6.0)
    assert primary.active
    assert not backup.active
    assert backup.failovers == 0


def test_failover_on_primary_crash(setup):
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=4.0)
    primary.crash()
    sim.run(until=10.0)
    assert backup.active
    assert backup.failovers == 1
    # The HMI keeps receiving updates from the backup.
    last = hmi.pushes_received
    sim.run(until=13.0)
    assert hmi.pushes_received > last


def test_unauthenticated_push_accepted_from_anywhere(setup):
    """The architectural weakness: the HMI believes any StatePush."""
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=3.0)
    attacker = Host(sim, "attacker")
    lan.connect(attacker)
    forged = StatePush(seq=10_000, server="primary",
                       breakers={"B10-1": False}, source_note="forged")
    attacker.udp_send(lan.ip_of(hosts["hmi"]), STATE_PUSH_PORT, forged,
                      src_port=STATE_PUSH_PORT)
    sim.run(until=4.0)
    assert hmi.forged_pushes_displayed == 1
    assert hmi.breaker_state("B10-1") is False   # the lie is displayed


def test_unauthenticated_command_accepted_from_anywhere(setup):
    """Anyone on the LAN can operate breakers through the server."""
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=3.0)
    attacker = Host(sim, "attacker")
    lan.connect(attacker)
    attacker.udp_send(lan.ip_of(hosts["primary"]), COMMAND_PORT,
                      OperatorCommand(breaker="B10-1", close=False),
                      src_port=5)
    sim.run(until=6.0)
    assert topology.get_breaker("B10-1") is False


def test_crashed_server_stops_polling(setup):
    sim, lan, topology, primary, backup, hmi, hosts = setup
    sim.run(until=3.0)
    primary.crash()
    backup.crash()
    sim.run(until=3.5)   # drain in-flight frames
    last = hmi.pushes_received
    sim.run(until=8.0)
    assert hmi.pushes_received == last
    assert hmi.seconds_since_update() >= 4.0
