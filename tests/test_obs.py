"""Observability layer: flight recorder, health board, deployment
reports — plus the EventLog ring/unsubscribe and Tracer retention
satellites that feed them."""

import json

import pytest

from repro.api import Simulator
from repro.obs import (
    CANONICAL_HOPS, HEALTH_STATES, FlightRecorder, HealthBoard,
    build_deployment_report, build_plant_section, collect_campaign_dumps,
    render_report, severity_of, trace_hop_stats,
)
from repro.telemetry.trace import Tracer
from repro.util.eventlog import EventLog


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
def test_severity_rules():
    assert severity_of("faults.violation.liveness") == "critical"
    assert severity_of("faults.budget_breach") == "critical"
    assert severity_of("faults.crash") == "warning"
    assert severity_of("client.giveup") == "error"
    assert severity_of("recovery.down") == "info"
    assert severity_of("prime.lifecycle") == "info"
    assert severity_of("prime.execute") == "debug"
    # Prefix match is on dotted boundaries, not raw startswith.
    assert severity_of("recoveryx") == "debug"


def test_ring_capacity_and_dropped():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim, capacity=5)
    for index in range(8):
        sim.log.log("src", "test.event", f"message {index}")
    assert len(recorder) == 5
    assert recorder.entries_total == 8
    assert recorder.dropped == 3
    # The oldest three fell off the ring.
    messages = [entry["message"] for entry in recorder.entries()]
    assert messages == [f"message {index}" for index in range(3, 8)]


def test_min_severity_filter_and_entry_queries():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim, min_severity="warning")
    sim.log.log("src", "prime.execute", "debug-level noise")
    sim.log.log("src", "faults.crash", "fault injected")
    sim.log.log("src", "client.giveup", "gave up")
    assert len(recorder) == 2
    assert [e["severity"] for e in recorder.entries()] == ["warning", "error"]
    assert [e["category"] for e in recorder.entries(min_severity="error")] \
        == ["client.giveup"]


def test_manual_record_and_validation():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim)
    recorder.record("info", "obs.note", "operator annotation", shift="night")
    entry = recorder.entries()[-1]
    assert entry["kind"] == "note"
    assert entry["data"]["shift"] == "night"
    with pytest.raises(ValueError, match="unknown severity"):
        recorder.record("loud", "obs.note", "nope")
    with pytest.raises(ValueError, match="capacity"):
        FlightRecorder(sim, capacity=0)
    with pytest.raises(ValueError, match="unknown severity"):
        FlightRecorder(sim, min_severity="chatty")


def test_auto_dump_on_violation_with_cooldown():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim, auto_dump_cooldown=1.0)
    sim.log.log("monitors", "faults.violation.liveness", "stalled",
                faults=["plan:0:crash"])
    assert len(recorder.dumps) == 1
    dump = recorder.dumps[0]
    assert dump["reason"] == "faults.violation.liveness"
    assert dump["fault_ids"] == ["plan:0:crash"]
    assert dump["trigger"]["source"] == "monitors"
    # A violation storm within the cooldown yields one capture...
    sim.log.log("monitors", "faults.violation.liveness", "still stalled",
                faults=["plan:0:crash"])
    assert len(recorder.dumps) == 1
    # ...and a later one (cooldown elapsed) captures again.
    sim.schedule(2.0, lambda: sim.log.log(
        "monitors", "faults.violation.agreement", "diverged", faults=[]))
    sim.run(until=3.0)
    assert len(recorder.dumps) == 2
    assert recorder.auto_dumps == 2


def test_auto_dump_on_budget_breach():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim)
    sim.log.log("budget-guard", "faults.budget_breach",
                "fault budget exceeded: +2 byzantine (f=1, k=1)",
                names=["replica1", "replica2"], budget_kind="byzantine")
    assert len(recorder.dumps) == 1
    assert recorder.dumps[0]["reason"] == "faults.budget_breach"


def test_dump_window_fault_union_and_spans():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim, window=4.0)
    sim.log.log("faults", "faults.crash", "fault injected",
                fault="plan:0:crash", targets=["replica1"])
    sim.tracer.record("early.hop", component="a")
    sim.schedule(10.0, lambda: sim.log.log(
        "faults", "faults.byzantine", "fault injected",
        fault="plan:1:byzantine", targets=["replica2"]))
    sim.schedule(10.5, lambda: sim.tracer.record("late.hop", component="b"))
    sim.run(until=11.0)
    dump = recorder.dump(reason="manual-check")
    # Only the in-window entry (t=10.0) and span (t=10.5) are captured;
    # the t=0 fault is outside the 4 s lookback.
    assert dump["fault_ids"] == ["plan:1:byzantine"]
    assert [e["category"] for e in dump["entries"]] == ["faults.byzantine"]
    assert [s["name"] for s in dump["spans"]] == ["late.hop"]
    assert dump["window"]["seconds"] == 4.0
    # Explicit fault ids merge into the union.
    wide = recorder.dump(window=100.0, fault_ids=["manual:0:x"])
    assert wide["fault_ids"] == \
        ["manual:0:x", "plan:0:crash", "plan:1:byzantine"]


def test_dump_retention_and_metrics():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim, max_dumps=2)
    for index in range(3):
        recorder.dump(reason=f"dump-{index}")
    assert [d["reason"] for d in recorder.dumps] == ["dump-1", "dump-2"]
    assert recorder.dumps_total == 3
    counter = sim.metrics.get("obs.recorder.dumps",
                              component="flight-recorder")
    assert counter is not None and counter.value == 3


def test_dump_is_json_stable():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim)
    sim.log.log("src", "test.payload", "odd payload",
                names={"b", "a"}, obj=object(), nested={"x": (1, 2)})
    dump = recorder.dump()
    text = json.dumps(dump, sort_keys=True)
    data = dump["entries"][0]["data"]
    assert data["names"] == ["a", "b"]          # sets sort deterministically
    assert isinstance(data["obj"], str)          # repr fallback
    assert data["nested"]["x"] == [1, 2]
    assert json.loads(text)["reason"] == "manual"


def test_periodic_snapshot_mode():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim, snapshot_interval=1.0)
    assert sim.pending_events == 1               # exactly the snapshot timer
    sim.run(until=3.5)
    snapshots = [e for e in recorder.entries() if e["kind"] == "metrics"]
    assert len(snapshots) == 3
    assert snapshots[0]["category"] == "obs.snapshot"
    assert "events_executed" in snapshots[0]["data"]


def test_passive_mode_schedules_nothing_and_close_unsubscribes():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim)
    assert sim.pending_events == 0
    sim.log.log("src", "test.event", "one")
    recorder.close()
    sim.log.log("src", "test.event", "two")
    assert [e["message"] for e in recorder.entries()] == ["one"]


def test_byzantine_storm_run_captures_attributed_dump():
    """Acceptance: the over-budget chaos scenario auto-dumps, and the
    dump's event window contains the triggering fault ids."""
    from repro.faults import BUILTIN_SCENARIOS, run_scenario

    run = run_scenario(BUILTIN_SCENARIOS["byzantine-storm"], seed=3,
                       duration=12.0)
    assert run["passed"] and run["violations"]
    assert run["dumps"], "no automatic black-box dump captured"
    dump = run["dumps"][0]
    assert dump["reason"].startswith("faults.violation")
    injected = {action["fault_id"] for action in run["faults"]["actions"]
                if action.get("injected_at") is not None}
    assert injected and set(dump["fault_ids"]) <= injected
    # The fault ids are visible in the captured event window itself.
    window_faults = {e["data"].get("fault") for e in dump["entries"]
                     if isinstance(e["data"], dict)}
    assert set(dump["fault_ids"]) <= window_faults


# ----------------------------------------------------------------------
# Health board
# ----------------------------------------------------------------------
def test_lifecycle_and_recovery_transitions():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=None)
    board.watch("replica1")
    sim.log.log("replica1", "prime.lifecycle", "replica crashed")
    assert board.state_of("replica1") == "down"
    sim.log.log("replica1", "prime.lifecycle", "replica recovering")
    assert board.state_of("replica1") == "recovering"
    sim.log.log("replica1", "prime.lifecycle", "state transfer complete")
    assert board.state_of("replica1") == "healthy"
    sim.log.log("proactive-recovery", "recovery.down", "taking down",
                target="replica2")
    assert board.state_of("replica2") == "down"
    sim.log.log("proactive-recovery", "recovery.up", "back up",
                target="replica2")
    assert board.state_of("replica2") == "recovering"


def test_fault_injection_and_revert_signals():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=None)
    sim.log.log("faults", "faults.byzantine", "fault injected",
                fault="p:0:byzantine", targets=["replica3"])
    assert board.state_of("replica3") == "suspect"
    sim.log.log("faults", "faults.byzantine", "fault reverted",
                fault="p:0:byzantine", targets=["replica3"])
    assert board.state_of("replica3") == "recovering"
    sim.log.log("faults", "faults.link-down", "fault injected",
                fault="p:1:link-down", targets=["replica4"])
    assert board.state_of("replica4") == "degraded"


def test_escalation_only_state_machine():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=None)
    board.signal("replica1", "suspect", "missed executions")
    board.signal("replica1", "degraded", "late")     # de-escalation ignored
    assert board.state_of("replica1") == "suspect"
    board.signal("replica1", "down", "crashed")       # escalation applies
    assert board.state_of("replica1") == "down"
    board.signal("replica1", "healthy", "operator cleared")
    assert board.state_of("replica1") == "healthy"
    with pytest.raises(ValueError, match="unknown health state"):
        board.signal("replica1", "great", "nope")


def test_state_at_and_timeline():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=None)
    board.watch("replica1")
    sim.schedule(2.0, board.signal, "replica1", "down", "crashed")
    sim.schedule(5.0, board.signal, "replica1", "recovering", "restarting")
    sim.run(until=6.0)
    assert board.state_at("replica1", 1.0) == "healthy"
    assert board.state_at("replica1", 2.0) == "down"
    assert board.state_at("replica1", 4.9) == "down"
    assert board.state_at("replica1", 5.5) == "recovering"
    timeline = board.timeline("replica1")
    assert [(e["from"], e["to"]) for e in timeline] == \
        [("healthy", "down"), ("down", "recovering")]
    assert board.timeline() == timeline


def test_decay_returns_quiet_components_to_healthy():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=0.5, clear_after=1.0)
    board.signal("replica1", "degraded", "link flap")
    sim.run(until=3.0)
    assert board.state_of("replica1") == "healthy"
    steps = [e["to"] for e in board.timeline("replica1")]
    assert steps == ["degraded", "recovering", "healthy"]


def test_retry_burst_marks_client_degraded():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=0.5, retry_burst=3)
    counter = sim.metrics.counter("prime.client.retries", component="hmi1")
    sim.schedule(0.3, counter.inc, 5)
    sim.run(until=1.0)
    assert board.state_of("hmi1") == "degraded"
    assert board.components["hmi1"].kind == "client"


def test_missed_executions_suspect_and_resume():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=0.5, clear_after=10.0)
    for name in ("replica1", "replica2", "replica3"):
        board.watch(name)
        sim.metrics.counter("prime.updates_executed", component=name)
    fast = [sim.metrics.counter("prime.updates_executed", component=name)
            for name in ("replica1", "replica2")]
    stalled = sim.metrics.counter("prime.updates_executed",
                                  component="replica3")
    sim.schedule(0.3, lambda: [c.inc(3) for c in fast])
    sim.run(until=1.0)
    assert board.state_of("replica3") == "suspect"
    assert board.components["replica3"].reason.startswith("missed")
    sim.schedule(0.1, stalled.inc, 3)        # fires at t=1.1
    sim.schedule(0.1, lambda: [c.inc(3) for c in fast])
    sim.run(until=1.6)                       # one sweep past the resume
    assert board.state_of("replica3") == "recovering"
    assert board.components["replica3"].reason == "executions resumed"


def test_board_interval_none_schedules_nothing():
    sim = Simulator(seed=1)
    HealthBoard(sim, interval=None)
    assert sim.pending_events == 0


def test_summary_census():
    sim = Simulator(seed=1)
    board = HealthBoard(sim, interval=None)
    board.watch_replicas({"replica1": None, "replica2": None})
    board.signal("replica1", "down", "crashed")
    summary = board.summary()
    assert summary["counts"]["down"] == 1
    assert summary["counts"]["healthy"] == 1
    assert summary["unhealthy"] == ["replica1"]
    assert summary["transitions"] == 1
    assert set(summary["components"]) == {"replica1", "replica2"}
    assert set(HEALTH_STATES) == set(summary["counts"])


# ----------------------------------------------------------------------
# Deployment report
# ----------------------------------------------------------------------
def test_trace_hop_stats_canonical_order():
    sim = Simulator(seed=1)
    sim.tracer.record("zz.custom", component="x")
    sim.tracer.record("hmi.update", component="hmi1")
    sim.tracer.record("overlay.deliver", component="daemon")
    sim.tracer.start_span("open.hop", component="y")     # unfinished: excluded
    hops = [row["hop"] for row in trace_hop_stats(sim.tracer)]
    assert hops == ["overlay.deliver", "hmi.update", "zz.custom"]
    assert set(hops) <= set(CANONICAL_HOPS) | {"zz.custom"}


def test_plant_section_and_renderings():
    sim = Simulator(seed=1)
    recorder = FlightRecorder(sim)
    board = HealthBoard(sim, interval=None)
    sim.metrics.histogram("prime.confirm_latency",
                          component="hmi1").observe(0.042)
    sim.tracer.record("prime.order", component="replica1")
    sim.log.log("replica1", "prime.lifecycle", "replica crashed")
    recorder.dump(reason="manual")
    section = build_plant_section(sim, recorder=recorder, board=board)
    assert section["reaction"]["prime.confirm_latency"]["samples"] == 1
    assert section["hops"][0]["hop"] == "prime.order"
    assert section["health"]["summary"]["counts"]["down"] == 1
    assert section["events"][0]["category"] == "prime.lifecycle"
    assert len(section["dumps"]) == 1

    report = build_deployment_report(meta={"seed": 1}, plant=section)
    markdown = render_report(report, "markdown")
    assert "# Spire deployment report" in markdown
    assert "prime.confirm_latency" in markdown
    assert "healthy → down" in markdown
    html = render_report(report, "html")
    assert html.startswith("<!DOCTYPE html>") and "&lt;" not in markdown
    parsed = json.loads(render_report(report, "json"))
    assert parsed["plant"]["counters"]["faults.invariant_violations"] == 0
    with pytest.raises(ValueError, match="unknown report format"):
        render_report(report, "pdf")
    # Renderings are pure functions of the report dict.
    assert render_report(report, "markdown") == markdown


def test_campaign_report_is_byte_identical_across_jobs(tmp_path):
    """Acceptance: the rendered deployment report for a campaign is the
    same bytes whether the sweep ran serial or fanned out."""
    from repro.faults import run_campaign

    paths = {jobs: tmp_path / f"report-jobs{jobs}.md" for jobs in (1, 2)}
    campaigns = {
        jobs: run_campaign(scenarios=["byzantine-storm"], seeds=[3],
                           duration=12.0, jobs=jobs, report=str(paths[jobs]))
        for jobs in (1, 2)
    }
    assert paths[1].read_bytes() == paths[2].read_bytes()
    dumps = collect_campaign_dumps(campaigns[1])
    assert dumps and dumps[0]["scenario"] == "byzantine-storm"
    assert dumps[0]["fault_ids"]
    assert "Black-box dumps" in paths[1].read_text()


def test_campaign_failed_cell_has_empty_dumps():
    from repro.faults.campaign import BUILTIN_SCENARIOS, _failed_cell_run

    run = _failed_cell_run(BUILTIN_SCENARIOS["baseline"], 1, "boom")
    assert run["dumps"] == []
    assert collect_campaign_dumps(
        {"config": {"scenarios": ["baseline"]},
         "scenarios": {"baseline": {"runs": [run]}}}) == []


# ----------------------------------------------------------------------
# EventLog satellites: unsubscribe + bounded ring
# ----------------------------------------------------------------------
def test_eventlog_unsubscribe():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.log("src", "cat", "one")
    log.unsubscribe(seen.append)
    log.log("src", "cat", "two")
    assert [r.message for r in seen] == ["one"]
    log.unsubscribe(seen.append)                 # no-op, not an error


def test_eventlog_ring_mode():
    log = EventLog(maxlen=3)
    for index in range(5):
        log.log("src", "cat", f"m{index}")
    assert len(log) == 3
    assert log.dropped == 2
    assert [r.message for r in log] == ["m2", "m3", "m4"]
    # Listeners still see every record, including dropped ones.
    seen = []
    log.subscribe(seen.append)
    log.log("src", "cat", "m5")
    assert seen[0].message == "m5" and log.dropped == 3


def test_eventlog_set_maxlen_conversions():
    log = EventLog()
    for index in range(5):
        log.log("src", "cat", f"m{index}")
    log.set_maxlen(2)                            # unbounded -> ring
    assert [r.message for r in log] == ["m3", "m4"]
    assert log.dropped == 3
    log.set_maxlen(None)                         # ring -> unbounded
    for index in range(5, 8):
        log.log("src", "cat", f"m{index}")
    assert len(log) == 5 and log.maxlen is None
    with pytest.raises(ValueError, match="maxlen"):
        log.set_maxlen(0)


def test_eventlog_default_behavior_unchanged():
    log = EventLog()
    for index in range(10):
        log.log("src", "cat", f"m{index}")
    assert len(log) == 10 and log.dropped == 0 and log.maxlen is None


# ----------------------------------------------------------------------
# Tracer satellites: retention cap + eviction counter
# ----------------------------------------------------------------------
def test_tracer_retention_evicts_oldest_finished():
    tracer = Tracer()
    for index in range(8):
        tracer.record(f"hop{index}")
    assert len(tracer) == 8
    capped = Tracer(max_retained=3)
    for index in range(8):
        capped.record(f"hop{index}")
    assert len(capped) == 3
    assert capped.spans_evicted == 5
    assert [s.name for s in capped.spans()] == ["hop5", "hop6", "hop7"]
    # Retained spans stay queryable through the trace index; evicted
    # trace ids are gone from it entirely.
    assert all(s.trace_id in capped.trace_ids() for s in capped.spans())
    assert len(capped.trace_ids()) == 3


def test_tracer_open_span_blocks_eviction():
    tracer = Tracer(max_retained=2)
    open_span = tracer.start_span("long.op")
    for index in range(5):
        tracer.record(f"hop{index}")
    # The open span sits at the old end: nothing can be evicted past it.
    assert len(tracer) == 6
    assert tracer.spans_evicted == 0
    open_span.finish(1.0)
    tracer.record("tail")
    assert len(tracer) == 2
    assert tracer.spans_evicted == 5


def test_tracer_retention_validation():
    with pytest.raises(ValueError, match="max_retained"):
        Tracer(max_retained=0)


def test_simulator_surfaces_eviction_counter():
    sim = Simulator(seed=1, trace_retention=2)
    for index in range(5):
        sim.tracer.record(f"hop{index}")
    sim.schedule(0.1, lambda: None)
    sim.run(until=0.2)
    counter = sim.metrics.get("telemetry.trace.spans_evicted",
                              component="tracer")
    assert counter is not None and counter.value == 3
    # Default-config simulations keep their metric surface unchanged.
    plain = Simulator(seed=1)
    plain.schedule(0.1, lambda: None)
    plain.run(until=0.2)
    assert plain.metrics.get("telemetry.trace.spans_evicted",
                             component="tracer") is None
