"""Tests for the Spines overlay: delivery, authentication, IT mode."""

import pytest

from repro.crypto import KeyStore
from repro.net import Host, Lan, locked_down_firewall
from repro.api import Simulator
from repro.spines import (
    BEST_EFFORT, IT_FLOOD, LinkEnvelope, OverlayMessage, RELIABLE,
    SpinesNetwork,
)


@pytest.fixture
def sim():
    return Simulator(seed=3)


def build_overlay(sim, n=4, intrusion_tolerant=True, mesh=True):
    lan = Lan(sim, "net", "10.0.0.0/24")
    keystore = KeyStore(sim.rng.child("keys"))
    hosts = []
    for i in range(n):
        host = Host(sim, f"host{i}", firewall=locked_down_firewall())
        lan.connect(host)
        hosts.append(host)
    overlay = SpinesNetwork(sim, "test", lan, keystore, port=8100,
                            intrusion_tolerant=intrusion_tolerant)
    for host in hosts:
        overlay.add_daemon(host)
    if mesh:
        overlay.connect_full_mesh()
    return lan, keystore, hosts, overlay


def names(overlay):
    return sorted(overlay.daemons)


def test_reliable_delivery_it_mode(sim):
    lan, ks, hosts, overlay = build_overlay(sim)
    d = names(overlay)
    received = []
    dst = overlay.daemons[d[1]].create_session(50, lambda src, p: received.append((src, p)))
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    src.send(dst.address, {"msg": "hello"}, service=RELIABLE)
    sim.run(until=1.0)
    assert received == [((d[0], 51), {"msg": "hello"})]
    assert src.stats.acked == 1


def test_reliable_delivery_routed_mode(sim):
    lan, ks, hosts, overlay = build_overlay(sim, intrusion_tolerant=False)
    d = names(overlay)
    received = []
    dst = overlay.daemons[d[2]].create_session(50, lambda src, p: received.append(p))
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    src.send(dst.address, "data", service=RELIABLE)
    sim.run(until=1.0)
    assert received == ["data"]
    assert src.stats.acked == 1


def test_multihop_line_topology_routed(sim):
    lan, ks, hosts, overlay = build_overlay(sim, n=4, intrusion_tolerant=False,
                                            mesh=False)
    d = names(overlay)
    for a, b in zip(d, d[1:]):
        overlay.add_edge(a, b)
    received = []
    overlay.daemons[d[3]].create_session(50, lambda src, p: received.append(p))
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    src.send((d[3], 50), "end-to-end", service=RELIABLE)
    sim.run(until=2.0)
    assert received == ["end-to-end"]


def test_multihop_line_topology_flooding(sim):
    lan, ks, hosts, overlay = build_overlay(sim, n=5, mesh=False)
    d = names(overlay)
    for a, b in zip(d, d[1:]):
        overlay.add_edge(a, b)
    received = []
    overlay.daemons[d[4]].create_session(50, lambda src, p: received.append(p))
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    src.send((d[4], 50), "flooded", service=IT_FLOOD)
    sim.run(until=2.0)
    assert received == ["flooded"]


def test_flood_deduplicates(sim):
    """In a full mesh the destination receives each message exactly once
    despite many flood copies."""
    lan, ks, hosts, overlay = build_overlay(sim, n=5)
    d = names(overlay)
    received = []
    overlay.daemons[d[1]].create_session(50, lambda src, p: received.append(p))
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    for i in range(10):
        src.send((d[1], 50), f"m{i}", service=RELIABLE)
    sim.run(until=2.0)
    assert sorted(received) == sorted(f"m{i}" for i in range(10))


def test_unkeyed_daemon_cannot_participate(sim):
    """The red team's modified daemon (no network key) is shut out."""
    lan, ks, hosts, overlay = build_overlay(sim)
    d = names(overlay)
    rogue_host = Host(sim, "rogue")
    lan.connect(rogue_host)
    # A rogue daemon with its own (wrong) keystore.
    rogue_ks = KeyStore(sim.rng.child("roguekeys"))
    rogue_net = SpinesNetwork(sim, "test", lan, rogue_ks, port=8101,
                              intrusion_tolerant=True)
    rogue = rogue_net.add_daemon(rogue_host)
    target = overlay.daemons[d[0]]
    rogue.add_neighbor(target.name, lan.ip_of(target.host), 8100)
    received = []
    target.create_session(50, lambda src, p: received.append(p))
    session = rogue.create_session(51, lambda src, p: None)
    session.send((target.name, 50), "malicious", service=RELIABLE)
    before = target.stats_dropped_auth
    sim.run(until=2.0)
    assert received == []
    assert target.stats_dropped_auth > before or target.stats_dropped_auth == before
    # The envelope was either dropped by the host firewall or by auth;
    # either way nothing was delivered and nothing was forwarded for it.


def test_injected_raw_udp_dropped_by_auth(sim):
    """Garbage on the daemon port never reaches sessions."""
    lan, ks, hosts, overlay = build_overlay(sim)
    d = names(overlay)
    target = overlay.daemons[d[0]]
    received = []
    target.create_session(50, lambda src, p: received.append(p))
    outsider = Host(sim, "outsider")
    lan.connect(outsider)
    outsider.udp_send(lan.ip_of(target.host), 8100, "not-an-envelope",
                      src_port=9)
    fake = OverlayMessage(src=("x", 1), dst=(target.name, 50),
                          service=BEST_EFFORT, payload="spoof", seq=1,
                          src_daemon="x")
    outsider.udp_send(lan.ip_of(target.host), 8100,
                      LinkEnvelope(sender="x", kind="data", body=fake),
                      src_port=9)
    sim.run(until=1.0)
    assert received == []


def test_stopped_daemon_stops_other_traffic_flows(sim):
    """Killing one daemon must not prevent the others communicating
    (the first red-team excursion action)."""
    lan, ks, hosts, overlay = build_overlay(sim, n=4)
    d = names(overlay)
    received = []
    overlay.daemons[d[2]].create_session(50, lambda src, p: received.append(p))
    src = overlay.daemons[d[1]].create_session(51, lambda src, p: None)
    overlay.stop_daemon(d[0])
    src.send((d[2], 50), "still-works", service=RELIABLE)
    sim.run(until=2.0)
    assert received == ["still-works"]


def test_stopped_daemon_sessions_silent(sim):
    lan, ks, hosts, overlay = build_overlay(sim, n=3)
    d = names(overlay)
    received = []
    overlay.daemons[d[1]].create_session(50, lambda src, p: received.append(p))
    victim_session = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    overlay.stop_daemon(d[0])
    assert not victim_session.send((d[1], 50), "dead", service=RELIABLE)
    sim.run(until=1.0)
    assert received == []


def test_daemon_restart_rejoins(sim):
    lan, ks, hosts, overlay = build_overlay(sim, n=3)
    d = names(overlay)
    received = []
    overlay.daemons[d[1]].create_session(50, lambda src, p: received.append(p))
    overlay.stop_daemon(d[0])
    sim.run(until=1.0)
    overlay.start_daemon(d[0])
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    src.send((d[1], 50), "back", service=RELIABLE)
    sim.run(until=2.0)
    assert received == ["back"]


def test_fairness_bounds_flooding_member(sim):
    """A keyed but malicious member flooding traffic cannot starve
    other sources: per-source fairness drops only the flooder's excess."""
    lan, ks, hosts, overlay = build_overlay(sim, n=4)
    d = names(overlay)
    received_honest = []
    overlay.daemons[d[3]].create_session(50, lambda src, p: received_honest.append(p))
    flooder = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    honest = overlay.daemons[d[1]].create_session(52, lambda src, p: None)
    # Flooder exceeds the fairness budget within one window.
    for i in range(5000):
        flooder.send((d[3], 50), f"junk{i}", service=IT_FLOOD)
    for i in range(20):
        honest.send((d[3], 50), f"real{i}", service=RELIABLE)
    sim.run(until=3.0)
    reals = [p for p in received_honest if str(p).startswith("real")]
    assert len(reals) == 20
    dropped = sum(dm.stats_dropped_fairness for dm in overlay.daemons.values())
    assert dropped > 0


def test_reliable_retransmits_through_lossy_period(sim):
    """Reliable service retries; after a brief outage the message still
    arrives exactly once."""
    lan, ks, hosts, overlay = build_overlay(sim, n=2)
    d = names(overlay)
    received = []
    dst_daemon = overlay.daemons[d[1]]
    dst_daemon.create_session(50, lambda src, p: received.append(p))
    src = overlay.daemons[d[0]].create_session(51, lambda src, p: None)
    link = lan.link_of(dst_daemon.host)
    link.set_up(False)
    src.send((d[1], 50), "persistent", service=RELIABLE)
    sim.schedule(0.35, link.set_up, True)
    sim.run(until=5.0)
    assert received == ["persistent"]
    assert src.stats.retransmissions >= 1
