"""The public API surface: everything exported by package ``__init__``
modules must import and be usable, and the structure promised by
DESIGN.md must exist."""

import importlib

import pytest

PACKAGES = [
    "repro", "repro.util", "repro.sim", "repro.crypto", "repro.net",
    "repro.spines", "repro.prime", "repro.diversity", "repro.plc",
    "repro.scada", "repro.mana", "repro.mana.models", "repro.redteam",
    "repro.core", "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", [p for p in PACKAGES
                                     if p not in ("repro", "repro.cli")])
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} exports nothing"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_design_inventory_modules_exist():
    """Every subsystem DESIGN.md section 3 promises."""
    for module in [
        "repro.sim.simulator", "repro.net.switch", "repro.net.arp",
        "repro.net.firewall", "repro.net.osprofile", "repro.net.tap",
        "repro.crypto.threshold", "repro.spines.daemon",
        "repro.spines.overlay", "repro.prime.replica", "repro.prime.client",
        "repro.diversity.multicompiler", "repro.diversity.exploit",
        "repro.diversity.recovery", "repro.scada.master",
        "repro.scada.proxy", "repro.scada.hmi", "repro.scada.history",
        "repro.scada.dnp3_proxy", "repro.scada.visualization",
        "repro.plc.modbus", "repro.plc.device", "repro.plc.topology",
        "repro.plc.dnp3", "repro.mana.features", "repro.mana.detector",
        "repro.mana.alerts", "repro.redteam.attacks",
        "repro.redteam.commercial", "repro.redteam.scenarios",
        "repro.core.spire", "repro.core.deployment",
        "repro.core.measurement",
    ]:
        importlib.import_module(module)


def test_version_string():
    import repro
    assert repro.__version__ == "1.0.0"


def test_headline_entry_points_exist():
    from repro.core import build_spire, build_redteam_testbed, plant_config
    from repro.sim import Simulator
    assert callable(build_spire)
    assert callable(build_redteam_testbed)
    # And the two deployment presets encode the paper's parameters.
    from repro.core import redteam_config
    assert plant_config().k == 1 and plant_config().n_hmis == 3
    assert redteam_config().k == 0
