"""The public API surface: everything exported by package ``__init__``
modules must import and be usable, and the structure promised by
DESIGN.md must exist."""

import importlib

import pytest

PACKAGES = [
    "repro", "repro.api", "repro.util", "repro.sim", "repro.crypto",
    "repro.net", "repro.spines", "repro.prime", "repro.diversity",
    "repro.plc", "repro.scada", "repro.mana", "repro.mana.models",
    "repro.redteam", "repro.core", "repro.telemetry", "repro.cli",
    "repro.faults", "repro.obs",
]

# The repro.api surface is a contract: additions are fine with a test
# update, but removals/renames break downstream scripts.
API_EXPORTS = {
    # Simulation kernel
    "Event", "PeriodicTimer", "Process", "SimulationError", "Simulator",
    # Declarative grid deployments
    "ClientPopulationSpec", "GridPhysics", "GridSpec", "GridSpecError",
    "GridWorld", "OverlayRegionSpec", "PhysicsSpec", "SubstationSpec",
    "build_world", "load_grid_spec", "make_town_spec",
    # Deployment configuration and builders
    "SpireConfig", "plant_config", "redteam_config",
    "PlcUnit", "SpireSystem", "build_spire",
    "BreakerCycler", "EnterpriseChatter", "RedTeamTestbed",
    "build_redteam_testbed",
    # Measurement and telemetry
    "MeasurementDevice", "ReactionSample",
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "Span", "TraceContext", "Tracer",
    # Fault injection and resilience campaigns
    "ChaosHarness", "FaultPlan", "MonitorSuite", "Scenario", "Violation",
    "run_campaign", "run_scenario", "report_digest",
    # Observability: flight recorder, health board, deployment reports
    "FlightRecorder", "HealthBoard", "build_deployment_report",
    "build_grid_section", "render_report",
    # Parallel sweep engine
    "UnitResult", "WorkUnit", "WorkerPool",
    # Sharded execution (one world, many processes, identical results)
    "ShardConfigError", "ShardedGridWorld",
    # Checkpoint/restore and time-travel replay
    "SnapshotError", "nearest_snapshot", "read_header", "replay_dump",
    "restore_world", "restore_world_bytes", "run_with_checkpoints",
    "save_world", "save_world_bytes",
}


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", [p for p in PACKAGES
                                     if p not in ("repro", "repro.cli")])
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} exports nothing"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_design_inventory_modules_exist():
    """Every subsystem DESIGN.md section 3 promises."""
    for module in [
        "repro.sim.simulator", "repro.net.switch", "repro.net.arp",
        "repro.net.firewall", "repro.net.osprofile", "repro.net.tap",
        "repro.crypto.threshold", "repro.spines.daemon",
        "repro.spines.overlay", "repro.prime.replica", "repro.prime.client",
        "repro.diversity.multicompiler", "repro.diversity.exploit",
        "repro.diversity.recovery", "repro.scada.master",
        "repro.scada.proxy", "repro.scada.hmi", "repro.scada.history",
        "repro.scada.dnp3_proxy", "repro.scada.visualization",
        "repro.plc.modbus", "repro.plc.device", "repro.plc.topology",
        "repro.plc.dnp3", "repro.mana.features", "repro.mana.detector",
        "repro.mana.alerts", "repro.redteam.attacks",
        "repro.redteam.commercial", "repro.redteam.scenarios",
        "repro.core.spire", "repro.core.deployment",
        "repro.core.measurement", "repro.faults.plan",
        "repro.faults.monitors", "repro.faults.campaign",
        "repro.obs.recorder", "repro.obs.health", "repro.obs.report",
    ]:
        importlib.import_module(module)


def test_version_string():
    import repro
    assert repro.__version__ == "1.0.0"


def test_headline_entry_points_exist():
    from repro.api import (
        GridSpec, build_redteam_testbed, build_spire, build_world,
    )
    assert callable(build_spire)
    assert callable(build_redteam_testbed)
    assert callable(build_world)
    # And the two deployment presets encode the paper's parameters.
    assert GridSpec.single_plant().spire_config().k == 1
    assert GridSpec.single_plant().spire_config().n_hmis == 3
    assert GridSpec.single_site("redteam").spire_config().k == 0


def test_legacy_config_constructors_warn():
    """``plant_config``/``redteam_config`` still work but deprecate
    toward ``GridSpec.single_site(...)``."""
    from repro.api import plant_config, redteam_config
    with pytest.warns(DeprecationWarning, match="GridSpec.single_plant"):
        config = plant_config()
    assert config.k == 1 and config.n_hmis == 3
    with pytest.warns(DeprecationWarning, match="GridSpec.single_site"):
        config = redteam_config()
    assert config.k == 0
    # The deprecated constructor and the GridSpec path agree exactly.
    from repro.api import GridSpec
    with pytest.warns(DeprecationWarning):
        legacy = plant_config(n_hmis=1, seed=9)
    assert legacy == GridSpec.single_plant(n_hmis=1, seed=9).spire_config()


def test_api_export_snapshot():
    import repro.api
    assert set(repro.api.__all__) == API_EXPORTS
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_api_never_warns():
    import warnings

    import repro.api
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert repro.api.Simulator is not None
        assert repro.api.build_spire is not None


@pytest.mark.parametrize("package,name", [
    ("repro.core", "build_spire"),
    ("repro.core", "plant_config"),
    ("repro.core", "MeasurementDevice"),
    ("repro.core", "build_redteam_testbed"),
    ("repro.sim", "Simulator"),
    ("repro.sim", "Process"),
])
def test_legacy_paths_warn_and_resolve(package, name):
    """Old import paths keep working but deprecate toward repro.api."""
    module = importlib.import_module(package)
    with pytest.warns(DeprecationWarning, match=f"repro.api import {name}"):
        legacy = getattr(module, name)
    api = importlib.import_module("repro.api")
    assert legacy is getattr(api, name)


def test_legacy_star_surface_matches_shim_table():
    """Every name the old packages exported is still reachable."""
    import repro.core
    import repro.sim
    assert set(repro.sim.__all__) == {
        "Event", "PeriodicTimer", "SimulationError", "Simulator", "Process"}
    for name in repro.core.__all__:
        assert name in API_EXPORTS


def test_config_rejects_unknown_override():
    from repro.api import GridSpec, plant_config
    with pytest.raises(TypeError, match="unknown SpireConfig field"):
        with pytest.warns(DeprecationWarning):
            plant_config(n_hmi=1)      # typo for n_hmis
    from repro.api import GridSpecError
    with pytest.raises(GridSpecError, match="unknown SpireConfig field"):
        GridSpec.single_plant(n_hmi=1)


def test_build_spire_single_argument_form():
    from repro.api import GridSpec, build_spire
    system = build_spire(GridSpec.single_site(
        "redteam", n_distribution_plcs=1, seed=11,
        telemetry=False).spire_config())
    system.sim.run(until=1.0)
    assert system.sim.now == 1.0
    assert system.sim.tracer.enabled is False
