"""Deployment-configuration flexibility: the builder supports any
(f, k) sizing, threshold mode, and hardening toggles."""

import pytest

from repro.api import Simulator, SpireConfig, build_spire
from repro.prime import replicas_required


def make_config(f, k, **overrides):
    base = SpireConfig(name=f"cfg-f{f}k{k}", f=f, k=k,
                       n_distribution_plcs=0, n_generation_plcs=0,
                       physical_scenario="plant", n_hmis=1,
                       with_historian=False)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


@pytest.mark.parametrize("f,k", [(1, 0), (1, 1), (2, 0)])
def test_any_fk_configuration_operates(f, k):
    sim = Simulator(seed=200 + 10 * f + k)
    system = build_spire(sim, make_config(f, k))
    assert system.prime_config.n == replicas_required(f, k)
    sim.run(until=4.0)
    hmi = system.hmis[0]
    assert hmi.breaker_state("plc-physical", "B57") is True
    # Tolerates f silent replicas.
    for name in system.prime_config.replica_names[:f]:
        system.replicas[name].byzantine = "crash"
    hmi.command_breaker("plc-physical", "B57", False)
    sim.run(until=sim.now + 4.0)
    assert system.physical_plc.topology.get_breaker("B57") is False
    assert system.master_views_consistent()


def test_f2_tolerates_two_compromises():
    sim = Simulator(seed=231)
    system = build_spire(sim, make_config(2, 0))
    assert system.prime_config.n == 7
    sim.run(until=4.0)
    names = system.prime_config.replica_names
    system.replicas[names[0]].byzantine = "crash"
    system.replicas[names[1]].byzantine = "crash"
    hmi = system.hmis[0]
    hmi.command_breaker("plc-physical", "B56", False)
    sim.run(until=sim.now + 5.0)
    assert system.physical_plc.topology.get_breaker("B56") is False


def test_unhardened_config_builds_dynamic_networks():
    sim = Simulator(seed=232)
    system = build_spire(sim, make_config(1, 0, harden_networks=False))
    assert not system.external_lan.switch.static_mode
    assert not any(iface.arp.static_mode
                   for iface in system.external_lan.members)


def test_no_physical_scenario():
    sim = Simulator(seed=233)
    config = make_config(1, 0, physical_scenario="none",
                         n_distribution_plcs=2)
    system = build_spire(sim, config)
    assert system.physical_plc is None
    sim.run(until=4.0)
    master = next(iter(system.masters.values()))
    assert "plc-dist-1" in master.plc_state


def test_variants_tracked_per_replica():
    sim = Simulator(seed=234)
    system = build_spire(sim, make_config(1, 1))
    layouts = {system.variants[name]["scada-master"].layout_seed
               for name in system.prime_config.replica_names}
    assert len(layouts) == system.prime_config.n   # all distinct
