"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.api import Process, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_periodic_timer_fires_repeatedly_and_stops():
    sim = Simulator()
    ticks = []
    timer = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    timer.stop()
    sim.run(until=6.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_timer_start_after():
    sim = Simulator()
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_timer_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_events_nested_scheduling():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(1.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 2.0)]


def test_halt_stops_run_loop():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.halt()))
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]
    sim.run()
    assert seen == [1, 2]


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i + 1), seen.append, i)
    sim.run(max_events=4)
    assert seen == [0, 1, 2, 3]


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=42)
    sim_b = Simulator(seed=42)
    child_a = sim_a.rng.child("net")
    child_b = sim_b.rng.child("net")
    assert [child_a.random() for _ in range(5)] == [child_b.random() for _ in range(5)]
    # A sibling stream must differ.
    other = sim_a.rng.child("prime")
    assert [other.random() for _ in range(5)] != [sim_b.rng.child("net").random() for _ in range(5)]


def test_event_log_carries_sim_time():
    sim = Simulator()
    sim.schedule(2.5, lambda: sim.log.log("src", "cat", "hello", a=1))
    sim.run()
    records = sim.log.records(category="cat")
    assert len(records) == 1
    assert records[0].time == 2.5
    assert records[0].data["a"] == 1


class _Ticker(Process):
    def __init__(self, sim):
        super().__init__(sim, "ticker")
        self.ticks = 0
        self.call_every(1.0, self._tick)

    def _tick(self):
        self.ticks += 1


def test_process_shutdown_cancels_timers():
    sim = Simulator()
    ticker = _Ticker(sim)
    sim.run(until=3.0)
    assert ticker.ticks == 3
    ticker.shutdown()
    sim.run(until=10.0)
    assert ticker.ticks == 3


def test_process_guarded_call_later_after_shutdown():
    sim = Simulator()
    ticker = _Ticker(sim)
    fired = []
    ticker.call_later(5.0, fired.append, "x")
    sim.run(until=1.5)
    ticker.shutdown()
    sim.run(until=10.0)
    assert fired == []
