"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.api import Process, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_periodic_timer_fires_repeatedly_and_stops():
    sim = Simulator()
    ticks = []
    timer = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    timer.stop()
    sim.run(until=6.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_timer_start_after():
    sim = Simulator()
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_timer_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_events_nested_scheduling():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(1.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 2.0)]


def test_halt_stops_run_loop():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.halt()))
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]
    sim.run()
    assert seen == [1, 2]


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i + 1), seen.append, i)
    sim.run(max_events=4)
    assert seen == [0, 1, 2, 3]


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=42)
    sim_b = Simulator(seed=42)
    child_a = sim_a.rng.child("net")
    child_b = sim_b.rng.child("net")
    assert [child_a.random() for _ in range(5)] == [child_b.random() for _ in range(5)]
    # A sibling stream must differ.
    other = sim_a.rng.child("prime")
    assert [other.random() for _ in range(5)] != [sim_b.rng.child("net").random() for _ in range(5)]


def test_event_log_carries_sim_time():
    sim = Simulator()
    sim.schedule(2.5, lambda: sim.log.log("src", "cat", "hello", a=1))
    sim.run()
    records = sim.log.records(category="cat")
    assert len(records) == 1
    assert records[0].time == 2.5
    assert records[0].data["a"] == 1


class _Ticker(Process):
    def __init__(self, sim):
        super().__init__(sim, "ticker")
        self.ticks = 0
        self.call_every(1.0, self._tick)

    def _tick(self):
        self.ticks += 1


def test_process_shutdown_cancels_timers():
    sim = Simulator()
    ticker = _Ticker(sim)
    sim.run(until=3.0)
    assert ticker.ticks == 3
    ticker.shutdown()
    sim.run(until=10.0)
    assert ticker.ticks == 3


def test_process_guarded_call_later_after_shutdown():
    sim = Simulator()
    ticker = _Ticker(sim)
    fired = []
    ticker.call_later(5.0, fired.append, "x")
    sim.run(until=1.5)
    ticker.shutdown()
    sim.run(until=10.0)
    assert fired == []


# ----------------------------------------------------------------------
# Batched same-timestamp dispatch, post() free-list, lazy-cancel sweep
# ----------------------------------------------------------------------
def test_batched_dispatch_preserves_schedule_order_with_zero_delay():
    # Events scheduled *during* a same-timestamp batch at that same
    # timestamp must still run, after the already-queued ones.
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, order.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "nested"]
    assert sim.now == 1.0


def test_batched_dispatch_respects_halt_mid_batch():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule(1.0, sim.halt)
    sim.schedule(1.0, order.append, "b")
    sim.run()
    assert order == ["a"]
    sim.run()
    assert order == ["a", "b"]


def test_batched_dispatch_respects_max_events_mid_batch():
    sim = Simulator()
    seen = []
    for i in range(6):
        sim.schedule(1.0, seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]


def test_post_runs_like_schedule_but_returns_no_handle():
    sim = Simulator()
    order = []
    assert sim.post(2.0, order.append, "b") is None
    sim.post(1.0, order.append, "a")
    sim.post_at(3.0, order.append, "c")
    with pytest.raises(SimulationError):
        sim.post(-1.0, order.append, "x")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.events_executed == 3


def test_post_recycles_event_objects():
    sim = Simulator()
    fired = []
    sim.post(1.0, fired.append, 1)
    sim.run()
    recycled = sim._free[-1]
    # Recycled events are scrubbed (no callback/arg retention) ...
    assert recycled.fn is None and recycled.args == ()
    # ... and reused by the next post() instead of a fresh allocation.
    sim.post(1.0, fired.append, 2)
    assert sim._heap[0] is recycled
    sim.run()
    assert fired == [1, 2]


def test_schedule_events_are_never_recycled():
    # Handle-holding callers may cancel after unrelated posts fired;
    # a recycled handle would cancel someone else's event.
    sim = Simulator()
    fired = []
    handle = sim.schedule(2.0, fired.append, "scheduled")
    sim.post(1.0, fired.append, "posted")
    sim.run(until=1.0)
    assert handle not in sim._free
    handle.cancel()
    sim.run()
    assert fired == ["posted"]


def test_mass_cancellation_sweeps_heap():
    sim = Simulator()
    keep = sim.schedule(500.0, lambda: None)
    handles = [sim.schedule(float(i + 1), lambda: None)
               for i in range(400)]
    for handle in handles:
        handle.cancel()
    # The sweep fired during cancellation: the heap is back below the
    # sweep threshold instead of holding 400 cancelled carcasses.
    assert len(sim._heap) <= 65
    assert sim.pending_events == 1
    sim.run()
    assert sim.now == 500.0
    assert keep.fired
