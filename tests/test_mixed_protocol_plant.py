"""Mixed-protocol deployment: distribution PLCs on Modbus, generation
units on DNP3 (the paper names both protocols)."""

import pytest

from repro.api import GridSpec, Simulator, build_spire


@pytest.fixture(scope="module")
def mixed():
    sim = Simulator(seed=88)
    config = GridSpec.single_plant(n_distribution_plcs=1, n_generation_plcs=2,
                          n_hmis=1, generation_protocol="dnp3",
                          heartbeat_interval=1.5).spire_config()
    system = build_spire(sim, config)
    sim.run(until=6.0)
    return sim, system


def test_both_protocols_report_into_masters(mixed):
    sim, system = mixed
    for master in system.masters.values():
        assert "plc-dist-1" in master.plc_state          # Modbus
        assert "plc-gen-1" in master.plc_state           # DNP3
        assert "plc-gen-2" in master.plc_state
        assert master.plc_state["plc-gen-1"]["G1-field"] is True


def test_hmi_sees_dnp3_units(mixed):
    sim, system = mixed
    hmi = system.hmis[0]
    assert hmi.breaker_state("plc-gen-1", "G1-output") is True


def test_command_to_dnp3_unit_roundtrip(mixed):
    sim, system = mixed
    hmi = system.hmis[0]
    topo = system.plcs["plc-gen-2"].topology
    hmi.command_breaker("plc-gen-2", "G2-output", False)
    sim.run(until=sim.now + 4.0)
    assert topo.get_breaker("G2-output") is False
    assert hmi.breaker_state("plc-gen-2", "G2-output") is False


def test_dnp3_unsolicited_beats_polling(mixed):
    """A field-side change on a DNP3 unit reaches the masters through
    the unsolicited report without waiting for the next integrity poll."""
    sim, system = mixed
    proxy = system.plcs["plc-gen-1"].proxy
    before = proxy.unsolicited_received
    system.plcs["plc-gen-1"].topology.set_breaker("G1-field", False)
    sim.run(until=sim.now + 0.8)   # < the 1s DNP3 poll interval
    assert proxy.unsolicited_received > before
    assert any(master.plc_state["plc-gen-1"]["G1-field"] is False
               for master in system.masters.values())
