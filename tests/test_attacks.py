"""Unit tests for the attacker toolkit primitives."""

import pytest

from repro.net import (
    Host, Lan, commercial_appliance, locked_down_firewall,
    ubuntu_desktop_2016, VULN_DIRTYCOW, VULN_WEBADMIN_DEFAULT_CREDS,
)
from repro.plc import PlcDevice, redteam_topology
from repro.redteam import ArpMitm, Attacker
from repro.api import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=51)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    attacker_host = Host(sim, "rt-box", os_profile=ubuntu_desktop_2016())
    lan.connect(attacker_host)
    attacker = Attacker(sim, "rt", attacker_host)
    return sim, lan, attacker_host, attacker


def test_attack_records_accumulate(world):
    sim, lan, attacker_host, attacker = world
    target = Host(sim, "victim", os_profile=ubuntu_desktop_2016())
    lan.connect(target)
    attacker.port_scan(attacker_host, lan.ip_of(target), ports=[22])
    sim.run(until=2.0)
    records = attacker.report()
    assert len(records) == 1
    assert records[0].name == "port-scan"
    assert records[0].succeeded is True
    assert attacker.summary()["port-scan"]


def test_exploit_remote_requires_vulnerable_service(world):
    sim, lan, attacker_host, attacker = world
    appliance = Host(sim, "appliance", os_profile=commercial_appliance())
    hardened = Host(sim, "hardened", firewall=locked_down_firewall())
    lan.connect(appliance)
    lan.connect(hardened)
    ok = attacker.exploit_remote(attacker_host, appliance,
                                 lan.ip_of(appliance),
                                 VULN_WEBADMIN_DEFAULT_CREDS)
    no_vuln = attacker.exploit_remote(attacker_host, hardened,
                                      lan.ip_of(hardened),
                                      VULN_WEBADMIN_DEFAULT_CREDS)
    sim.run(until=3.0)
    assert ok.succeeded is True
    assert attacker.footholds["appliance"] == "user"
    assert appliance.compromised_level == "user"
    assert no_vuln.succeeded is False


def test_exploit_remote_blocked_by_firewall(world):
    """Vulnerable service behind a default-deny firewall: unreachable."""
    sim, lan, attacker_host, attacker = world
    shielded = Host(sim, "shielded", os_profile=commercial_appliance(),
                    firewall=locked_down_firewall())
    lan.connect(shielded)
    record = attacker.exploit_remote(attacker_host, shielded,
                                     lan.ip_of(shielded),
                                     VULN_WEBADMIN_DEFAULT_CREDS)
    sim.run(until=3.0)
    assert record.succeeded is False
    assert "unreachable" in record.detail


def test_escalate_local_needs_foothold_and_vuln(world):
    sim, lan, attacker_host, attacker = world
    target = Host(sim, "victim", os_profile=ubuntu_desktop_2016())
    lan.connect(target)
    no_foothold = attacker.escalate_local(target, VULN_DIRTYCOW)
    assert no_foothold.succeeded is False
    attacker.grant_foothold(target, "user")
    escalated = attacker.escalate_local(target, VULN_DIRTYCOW)
    assert escalated.succeeded is True
    assert attacker.footholds["victim"] == "root"


def test_loot_accumulates_key_material(world):
    sim, lan, attacker_host, attacker = world
    from repro.crypto import KeyStore
    ks = KeyStore()
    ks.create_symmetric("spines.ops")
    target = Host(sim, "replica")
    target.key_ring = ks.ring_for(symmetric_ids=["spines.ops"])
    lan.connect(target)
    attacker.grant_foothold(target, "user")
    assert attacker.loot.has_symmetric("spines.ops")


def test_plc_attacks_against_reachable_plc(world):
    sim, lan, attacker_host, attacker = world
    plc_host = Host(sim, "plc")
    lan.connect(plc_host)
    device = PlcDevice(sim, "plc", plc_host, redteam_topology(),
                       physical=True)
    dump = attacker.plc_memory_dump(attacker_host, lan.ip_of(plc_host))
    sim.run(until=2.0)
    assert dump.succeeded is True
    assert attacker.dumped_configs[lan.ip_of(plc_host)]["logic"] == \
        "interlock-v1"
    upload = attacker.plc_config_upload(attacker_host, lan.ip_of(plc_host),
                                        {"logic": "evil"})
    sim.run(until=4.0)
    assert upload.succeeded is True
    assert device.compromised_config


def test_dos_flood_saturates_victim_link(world):
    sim, lan, attacker_host, attacker = world
    victim = Host(sim, "victim")
    lan.connect(victim)
    link = lan.link_of(victim)
    link.bandwidth = 100_000.0
    link.queue_bytes = 8_000
    victim.udp_bind(5000, lambda *args: None)
    record = attacker.dos_flood(attacker_host, lan.ip_of(victim), 5000,
                                duration=2.0, rate_pps=1000)
    sim.run(until=4.0)
    assert record.succeeded is True
    assert link.frames_dropped > 0


def test_spoofed_udp_carries_claimed_source(world):
    sim, lan, attacker_host, attacker = world
    victim = Host(sim, "victim")
    peer = Host(sim, "peer")
    lan.connect(victim)
    lan.connect(peer)
    seen = []
    victim.udp_bind(7777, lambda src_ip, src_port, payload: seen.append(src_ip))
    attacker.spoof_udp(attacker_host, lan.ip_of(peer), lan.ip_of(victim),
                       7777, "spoofed")
    sim.run(until=2.0)
    assert seen == [lan.ip_of(peer)]   # victim believes it came from peer


def test_mitm_forward_policy_observes_without_modifying(world):
    sim, lan, attacker_host, attacker = world
    a = Host(sim, "a")
    b = Host(sim, "b")
    lan.connect(a)
    lan.connect(b)
    received = []
    b.udp_bind(6000, lambda src, port, payload: received.append(payload))
    # Prime ARP caches, then poison.
    a.udp_send(lan.ip_of(b), 6000, "before", src_port=1)
    sim.run(until=1.0)
    mitm = ArpMitm(sim, "mitm", attacker_host, lan, lan.ip_of(a),
                   lan.ip_of(b), policy="forward")
    sim.run(until=2.0)
    a.udp_send(lan.ip_of(b), 6000, "through-mitm", src_port=1)
    sim.run(until=3.0)
    mitm.stop_attack()
    assert "through-mitm" in received       # relayed intact
    assert len(mitm.intercepted) >= 1
    assert mitm.relayed >= 1


def test_mitm_modify_policy_rewrites_payloads(world):
    sim, lan, attacker_host, attacker = world
    a = Host(sim, "a")
    b = Host(sim, "b")
    lan.connect(a)
    lan.connect(b)
    received = []
    b.udp_bind(6000, lambda src, port, payload: received.append(payload))
    a.udp_send(lan.ip_of(b), 6000, "warmup", src_port=1)
    sim.run(until=1.0)
    mitm = ArpMitm(sim, "mitm", attacker_host, lan, lan.ip_of(a),
                   lan.ip_of(b),
                   policy=lambda payload: f"evil:{payload}")
    sim.run(until=2.0)
    a.udp_send(lan.ip_of(b), 6000, "secret", src_port=1)
    sim.run(until=3.0)
    mitm.stop_attack()
    assert "evil:secret" in received
    assert mitm.modified >= 1
