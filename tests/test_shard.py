"""Tests for the sharded grid executor.

The load-bearing property: ``shards=N`` is a wall-clock knob, never a
semantics knob — grid sections, summaries, and event digests are
byte-identical for every shard count, including across a cross-shard
trip/restore fault arc.
"""

import dataclasses
import json

import pytest

from repro.grid.spec import make_town_spec
from repro.shard import (
    CORE_KERNEL, ShardConfigError, ShardedGridWorld, daemon_owner_map,
    kernel_names, spec_lookahead,
)


def _drive(spec, shards, seed):
    """The cmd_grid arc in miniature: workload, trip, restore."""
    world = ShardedGridWorld(spec, shards=shards, seed=seed)
    try:
        world.start_workload(6, start=0.3, interval=0.6)
        world.run(until=1.5)
        opened = world.trip_substation("sub-01")
        world.run(until=2.5)
        closed = world.restore_substation("sub-01")
        world.run(until=3.0)
        return {
            "opened": opened,
            "closed": closed,
            "section": json.dumps(world.grid_section(), sort_keys=True),
            "summary": json.dumps(world.grid_summary(), sort_keys=True),
            "digest": world.event_digest(),
        }
    finally:
        world.close()


@pytest.mark.parametrize("seed", [3, 11])
def test_shard_counts_are_byte_identical(seed):
    spec = make_town_spec(5, seed=seed)
    baseline = _drive(spec, 1, seed)
    assert baseline["opened"] == 2          # sub-01 has two feed breakers
    assert baseline["closed"] > 0
    for shards in (2, 4):
        result = _drive(spec, shards, seed)
        assert result == baseline, f"shards={shards} diverged from shards=1"


def test_shard_run_is_live_not_vacuous():
    spec = make_town_spec(5, seed=3)
    world = ShardedGridWorld(spec, shards=1, seed=3)
    try:
        world.start_workload(4, start=0.3, interval=0.6)
        world.run(until=4.0)
        section = world.grid_section()
    finally:
        world.close()
    # Cross-shard round trips really happened: HMI commands (core
    # kernel) were applied by proxies (substation kernels) and their
    # reaction spans closed, proxies polled their PLCs, and the
    # replicas stayed in normal operation.
    assert section["replicas"]["normal"] == section["replicas"]["total"]
    rows = {row["name"]: row for row in section["substations"]}
    assert sum(row["commands_applied"] for row in rows.values()) >= 4
    # DNP3 proxies surface activity through unsolicited reporting, not
    # the poll counter — matching the monolithic section exactly.
    polled = [sub.name for sub in spec.substations
              if sub.protocol != "dnp3"]
    assert all(rows[name]["proxy_polls"] > 0 for name in polled)
    assert sum(row["reaction"]["samples"] for row in rows.values()) >= 4


def test_cross_shard_trip_reaches_core_physics():
    spec = make_town_spec(5, seed=3)
    world = ShardedGridWorld(spec, shards=2, seed=3)
    try:
        world.run(until=1.0)
        world.trip_substation("sub-01")
        world.run(until=2.5)
        section = world.grid_section()
    finally:
        world.close()
    row = {r["name"]: r for r in section["substations"]}["sub-01"]
    # The fraction probe carried the de-energization across the
    # process boundary into the core kernel's physics solver.
    assert row["breakers_closed"] < row["breakers"]
    assert row["energized_fraction"] == 0.0
    assert section["frequency"]["hz"] != section["frequency"]["min_hz"]


def test_zero_lookahead_is_rejected():
    spec = make_town_spec(5, seed=3)
    regions = [dataclasses.replace(region, latency=0.0)
               for region in spec.resolved_regions()]
    flat = dataclasses.replace(spec, regions=regions)
    assert spec_lookahead(flat) == 0.0
    with pytest.raises(ShardConfigError, match="lookahead"):
        ShardedGridWorld(flat, shards=2)


def test_site_specs_and_bad_shard_counts_are_rejected():
    from repro.grid.spec import GridSpec

    with pytest.raises(ShardConfigError, match="single-site"):
        ShardedGridWorld(GridSpec.single_plant(seed=3), shards=2)
    with pytest.raises(ShardConfigError, match="shards"):
        ShardedGridWorld(make_town_spec(5, seed=3), shards=0)


def test_kernel_decomposition_is_spec_derived():
    spec = make_town_spec(5, seed=3)
    names = kernel_names(spec)
    assert names[0] == CORE_KERNEL
    assert names[1:] == [sub.name for sub in spec.substations]
    owners = daemon_owner_map(spec)
    assert owners["ext.proxy.sub-01"] == "sub-01"
    assert owners["ext.hmi-1"] == CORE_KERNEL
    assert owners["ext.pop-operators"] == CORE_KERNEL
    assert all(owners[f"ext.{name}"] == CORE_KERNEL
               for name in ("replica1", "replica2"))


def test_more_shards_than_kernels_collapses_empty_lanes():
    spec = make_town_spec(2, seed=5)
    world = ShardedGridWorld(spec, shards=8, seed=5)
    try:
        assert len(world._lanes) == 3       # core + 2 substations
        world.run(until=0.5)
        assert world.now == 0.5
    finally:
        world.close()
