"""Red-team experiment reproduction tests (Section IV).

The whole experiment is executed once (module-scoped fixture) in the
same order as the real event, then individual tests assert the paper's
reported outcome for each stage.
"""

import pytest

from repro.api import Simulator, build_redteam_testbed
from repro.redteam import Attacker
from repro.redteam.scenarios import (
    check_commercial_health, check_spire_health,
    run_commercial_enterprise_pivot, run_commercial_ops_mitm,
    run_spire_enterprise_probe, run_spire_excursion, run_spire_ops_attacks,
)


@pytest.fixture(scope="module")
def experiment():
    sim = Simulator(seed=21)
    testbed = build_redteam_testbed(sim)
    testbed.start_cyclers(interval=2.0)
    sim.run(until=6.0)
    ent_host = testbed.place_attacker("enterprise", "rt-ent")
    attacker = Attacker(sim, "redteam", ent_host)

    reports = {}
    reports["commercial-enterprise"] = run_commercial_enterprise_pivot(
        testbed, attacker)
    ops_host = testbed.place_attacker("ops-commercial", "rt-ops")
    attacker.footholds[ops_host.name] = "root"
    reports["commercial-ops"] = run_commercial_ops_mitm(
        testbed, attacker, ops_host)
    reports["spire-enterprise"] = run_spire_enterprise_probe(
        testbed, attacker)
    spire_host = testbed.place_attacker("ops-spire", "rt-spire")
    attacker.footholds[spire_host.name] = "root"
    reports["spire-ops"] = run_spire_ops_attacks(testbed, attacker,
                                                 spire_host)
    reports["excursion"] = run_spire_excursion(testbed, attacker)
    return sim, testbed, attacker, reports


# ---------------------------------------------------------------------------
# Commercial system outcomes (the red team won)
# ---------------------------------------------------------------------------
def test_enterprise_pivot_reaches_operations(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["commercial-enterprise"]
    assert report.achieved("pivot onto operations network")


def test_plc_memory_dump_succeeds_on_commercial(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["commercial-enterprise"]
    assert report.achieved("PLC memory dump")
    plc_ip = testbed.commercial.lan.ip_of(testbed.commercial.plc_host)
    assert attacker.dumped_configs[plc_ip]["logic"] == "interlock-v1"


def test_plc_config_upload_takes_control(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["commercial-enterprise"]
    assert report.achieved("PLC config upload (control of PLC)")
    assert testbed.commercial.plc.compromised_config


def test_commercial_hmi_shown_forged_updates(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["commercial-ops"]
    assert report.achieved("send modified updates to HMI")
    assert testbed.commercial.hmi.forged_pushes_displayed > 0


def test_commercial_hmi_updates_suppressed(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["commercial-ops"]
    assert report.achieved("prevent correct updates from being received")


# ---------------------------------------------------------------------------
# Spire outcomes (the red team was defeated)
# ---------------------------------------------------------------------------
def test_no_visibility_into_spire_from_enterprise(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["spire-enterprise"]
    assert not report.achieved("gain visibility into Spire from enterprise")


def test_spire_port_scan_sees_nothing(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["spire-ops"]
    assert not report.achieved("port scan of a replica")


def test_spire_plc_unreachable_over_network(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["spire-ops"]
    assert not report.achieved("reach the PLC over the network")
    assert not testbed.spire.physical_plc.device.compromised_config


def test_spire_arp_mitm_fails(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["spire-ops"]
    assert not report.achieved("ARP-poisoning man-in-the-middle")


def test_spire_spoofing_fails(experiment):
    _, testbed, attacker, reports = experiment
    assert not reports["spire-ops"].achieved("IP spoofing into the overlay")


def test_spire_dos_fails(experiment):
    _, testbed, attacker, reports = experiment
    assert not reports["spire-ops"].achieved(
        "denial of service (traffic burst)")


def test_excursion_daemon_stop_tolerated(experiment):
    _, testbed, attacker, reports = experiment
    assert not reports["excursion"].achieved(
        "stop Spines daemon on one replica")


def test_excursion_unkeyed_daemon_shut_out(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["excursion"]
    assert not report.achieved("run modified daemon without keys")
    stage = next(s for s in report.stages
                 if s.stage == "run modified daemon without keys")
    assert stage.observations["dropped"] > 0


def test_excursion_privilege_escalation_fails_on_hardened_os(experiment):
    _, testbed, attacker, reports = experiment
    assert not reports["excursion"].achieved(
        "privilege escalation (dirtycow, sshd)")


def test_excursion_patched_binary_no_effect(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["excursion"]
    assert not report.achieved("patch Spines binary with exploit")
    stage = next(s for s in report.stages
                 if s.stage == "patch Spines binary with exploit")
    assert stage.observations["exploit_executions"] == 0


def test_excursion_fairness_attack_bounded(experiment):
    _, testbed, attacker, reports = experiment
    report = reports["excursion"]
    assert not report.achieved(
        "fairness attack as trusted member (root + source)")
    stage = next(s for s in report.stages if "fairness" in s.stage)
    assert stage.observations["dropped"] > 0


def test_both_systems_health_after_experiment(experiment):
    """After the full campaign, Spire still operates; the commercial
    system also 'operates' but its PLC runs attacker logic and its HMI
    was lied to."""
    sim, testbed, attacker, reports = experiment
    spire_health = check_spire_health(testbed)
    assert spire_health["ok"]
    assert testbed.spire.master_views_consistent()
    assert testbed.commercial.plc.compromised_config   # the difference


def test_mana_observed_the_attacks(experiment):
    """MANA instances trained on the pre-attack baseline flag the
    attack traffic on the networks where attacks happened."""
    sim, testbed, attacker, reports = experiment
    testbed.train_mana(1.0, 6.0)
    for instance in testbed.mana.values():
        instance.evaluate_range(6.0, sim.now)
    assert len(testbed.mana["MANA-2"].alerts) > 0      # commercial ops
    assert len(testbed.mana["MANA-3"].alerts) > 0      # spire ops (DoS etc.)
    incidents = testbed.mana["MANA-2"].correlator.incidents
    assert incidents and incidents[0].peak_score > 1.0
