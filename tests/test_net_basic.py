"""Tests for the network substrate: links, switches, ARP, UDP/TCP."""

import pytest

from repro.net import Host, Lan, locked_down_firewall, INBOUND, OUTBOUND
from repro.api import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


def make_lan(sim, hosts=2, cidr="10.0.0.0/24"):
    lan = Lan(sim, "lan", cidr)
    members = []
    for i in range(hosts):
        host = Host(sim, f"h{i}")
        lan.connect(host)
        members.append(host)
    return lan, members


def test_udp_delivery_between_hosts(sim):
    lan, (a, b) = make_lan(sim)
    received = []
    b.udp_bind(9000, lambda src_ip, src_port, payload: received.append(
        (src_ip, src_port, payload)))
    a.udp_send(lan.ip_of(b), 9000, "hello", src_port=1234)
    sim.run(until=1.0)
    assert received == [(lan.ip_of(a), 1234, "hello")]


def test_udp_requires_arp_resolution_once(sim):
    lan, (a, b) = make_lan(sim)
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    # Two sends: the first triggers ARP; both must arrive, in order.
    a.udp_send(lan.ip_of(b), 9000, "one", src_port=1)
    a.udp_send(lan.ip_of(b), 9000, "two", src_port=1)
    sim.run(until=1.0)
    assert [payload for (_, _, payload) in received] == ["one", "two"]


def test_udp_to_unbound_port_is_dropped(sim):
    lan, (a, b) = make_lan(sim)
    a.udp_send(lan.ip_of(b), 9999, "void", src_port=1)
    sim.run(until=1.0)  # nothing to assert beyond "no crash"


def test_link_latency_applies(sim):
    lan, (a, b) = make_lan(sim)
    lan.link_of(a).latency = 0.010
    lan.link_of(b).latency = 0.010
    arrivals = []
    b.udp_bind(9000, lambda *args: arrivals.append(sim.now))
    # Pre-resolve ARP so the measured send is a single frame.
    a.udp_send(lan.ip_of(b), 9000, "warmup", src_port=1)
    sim.run(until=1.0)
    start = sim.now
    a.udp_send(lan.ip_of(b), 9000, "timed", src_port=1)
    sim.run(until=start + 1.0)
    assert len(arrivals) == 2
    # Two link hops (host->switch, switch->host), each >= 10ms.
    assert arrivals[1] - start >= 0.020


def test_down_link_drops_traffic(sim):
    lan, (a, b) = make_lan(sim)
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    lan.link_of(b).set_up(False)
    a.udp_send(lan.ip_of(b), 9000, "lost", src_port=1)
    sim.run(until=1.0)
    assert received == []
    lan.link_of(b).set_up(True)
    a.udp_send(lan.ip_of(b), 9000, "found", src_port=1)
    sim.run(until=2.0)
    assert len(received) == 1


def test_link_queue_overflow_drops(sim):
    """Flooding a slow link drops frames — the DoS mechanism."""
    lan, (a, b) = make_lan(sim)
    link = lan.link_of(b)
    link.bandwidth = 10_000.0      # 10 kB/s
    link.queue_bytes = 2_000
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    for _ in range(100):
        a.udp_send(lan.ip_of(b), 9000, "x" * 200, src_port=1)
    sim.run(until=5.0)
    assert link.frames_dropped > 0
    assert len(received) < 100


def test_host_firewall_blocks_inbound(sim):
    lan, (a, b) = make_lan(sim)
    b.firewall = locked_down_firewall()
    b.firewall.allow(INBOUND, "udp", remote_ip=lan.ip_of(a), local_port=9000)
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    b.udp_bind(9001, lambda *args: received.append(args))
    a.udp_send(lan.ip_of(b), 9000, "allowed", src_port=5)
    a.udp_send(lan.ip_of(b), 9001, "blocked", src_port=5)
    sim.run(until=1.0)
    assert len(received) == 1
    assert b.firewall.packets_dropped == 1


def test_host_firewall_blocks_outbound(sim):
    lan, (a, b) = make_lan(sim)
    a.firewall = locked_down_firewall()
    a.firewall.allow(OUTBOUND, "udp", remote_port=9000)
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    b.udp_bind(9001, lambda *args: received.append(args))
    assert a.udp_send(lan.ip_of(b), 9000, "ok", src_port=5)
    assert not a.udp_send(lan.ip_of(b), 9001, "no", src_port=5)
    sim.run(until=1.0)
    assert len(received) == 1


def test_tcp_connect_and_exchange(sim):
    lan, (a, b) = make_lan(sim)
    server_received = []
    client_received = []

    def on_connect(conn):
        conn.on_data = lambda c, payload: (
            server_received.append(payload), c.send(f"echo:{payload}"))

    b.tcp_listen(8080, on_connect)
    done = {}

    def established(conn):
        conn.send("ping")
        done["conn"] = conn

    conn = a.tcp_connect(lan.ip_of(b), 8080, established,
                         on_data=lambda c, payload: client_received.append(payload))
    sim.run(until=2.0)
    assert server_received == ["ping"]
    assert client_received == ["echo:ping"]
    assert conn.established


def test_tcp_connect_to_closed_port_fails(sim):
    lan, (a, b) = make_lan(sim)
    failures = []
    a.tcp_connect(lan.ip_of(b), 4444, lambda c: pytest.fail("must not connect"),
                  on_failure=failures.append)
    sim.run(until=5.0)
    assert failures  # RST or timeout


def test_tcp_connect_through_default_deny_firewall_times_out(sim):
    lan, (a, b) = make_lan(sim)
    b.firewall = locked_down_firewall()
    b.tcp_listen(8080, lambda conn: pytest.fail("must not accept"))
    failures = []
    a.tcp_connect(lan.ip_of(b), 8080, lambda c: pytest.fail("must not connect"),
                  on_failure=failures.append)
    sim.run(until=5.0)
    assert failures == ["timeout"]


def test_os_profile_services_listen(sim):
    from repro.net import ubuntu_desktop_2016
    lan = Lan(sim, "lan", "10.0.0.0/24")
    desktop = Host(sim, "desktop", os_profile=ubuntu_desktop_2016())
    lan.connect(desktop)
    assert 22 in desktop.listening_ports()
    assert 445 in desktop.listening_ports()


def test_multi_interface_host_routes_by_subnet(sim):
    lan_a = Lan(sim, "a", "10.1.0.0/24")
    lan_b = Lan(sim, "b", "10.2.0.0/24")
    dual = Host(sim, "dual")
    peer_a = Host(sim, "pa")
    peer_b = Host(sim, "pb")
    lan_a.connect(dual)
    lan_a.connect(peer_a)
    lan_b.connect(dual)
    lan_b.connect(peer_b)
    got_a, got_b = [], []
    peer_a.udp_bind(7000, lambda *args: got_a.append(args))
    peer_b.udp_bind(7000, lambda *args: got_b.append(args))
    dual.udp_send(lan_a.ip_of(peer_a), 7000, "to-a", src_port=1)
    dual.udp_send(lan_b.ip_of(peer_b), 7000, "to-b", src_port=1)
    sim.run(until=1.0)
    assert got_a[0][2] == "to-a"
    assert got_b[0][2] == "to-b"
