"""Tests for utility modules: event log, id generation, RNG trees."""

from repro.api import Simulator
from repro.util import DeterministicRng, EventLog, IdGenerator


# ---------------------------------------------------------------------------
# EventLog
# ---------------------------------------------------------------------------
def test_eventlog_filters_by_category_prefix():
    log = EventLog()
    log.log("a", "prime.execute", "x")
    log.log("a", "prime.commit", "y")
    log.log("b", "net.arp", "z")
    assert log.count(category="prime") == 2
    assert log.count(category="prime.execute") == 1
    assert log.count(category="net") == 1
    assert log.count() == 3


def test_eventlog_category_prefix_respects_dotted_boundary():
    """"prime" must not match "primex" — only exact or dotted children."""
    log = EventLog()
    log.log("a", "prime", "root")
    log.log("a", "prime.execute", "child")
    log.log("a", "primex", "lookalike")
    assert log.count(category="prime") == 2
    assert log.count(category="primex") == 1
    assert {r.category for r in log.records(category="prime")} == {
        "prime", "prime.execute"}


def test_eventlog_filters_by_source_and_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.log.log("r1", "c", "early"))
    sim.schedule(5.0, lambda: sim.log.log("r1", "c", "late"))
    sim.schedule(5.0, lambda: sim.log.log("r2", "c", "other"))
    sim.run()
    assert len(sim.log.records(source="r1")) == 2
    assert len(sim.log.records(source="r1", since=2.0)) == 1
    assert sim.log.records(source="r2")[0].message == "other"


def test_eventlog_listeners_stream_records():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.log("s", "c", "m", value=3)
    assert len(seen) == 1
    assert seen[0].data["value"] == 3


def test_eventlog_clear_and_len():
    log = EventLog()
    log.log("s", "c", "m")
    assert len(log) == 1
    log.clear()
    assert len(log) == 0


def test_eventlog_iteration():
    log = EventLog()
    for i in range(3):
        log.log("s", "c", f"m{i}")
    assert [r.message for r in log] == ["m0", "m1", "m2"]


# ---------------------------------------------------------------------------
# IdGenerator
# ---------------------------------------------------------------------------
def test_idgen_monotonic():
    gen = IdGenerator()
    values = [gen.next_int() for _ in range(5)]
    assert values == [1, 2, 3, 4, 5]


def test_idgen_prefix():
    gen = IdGenerator(prefix="pkt-")
    assert gen.next_id() == "pkt-1"
    assert gen.next_id() == "pkt-2"


def test_idgen_unprefixed_ids_are_plain_numbers():
    gen = IdGenerator()
    assert gen.next_id() == "1"


# ---------------------------------------------------------------------------
# DeterministicRng
# ---------------------------------------------------------------------------
def test_rng_same_path_same_stream():
    a = DeterministicRng(7).child("x").child("y")
    b = DeterministicRng(7).child("x").child("y")
    assert [a.randint(0, 100) for _ in range(10)] == \
        [b.randint(0, 100) for _ in range(10)]


def test_rng_different_seeds_differ():
    a = DeterministicRng(7).child("x")
    b = DeterministicRng(8).child("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_rng_adding_child_does_not_perturb_sibling():
    root_a = DeterministicRng(7)
    sibling_a = root_a.child("sib")
    first = [sibling_a.random() for _ in range(5)]

    root_b = DeterministicRng(7)
    _extra = root_b.child("new-consumer")   # added before the sibling
    sibling_b = root_b.child("sib")
    second = [sibling_b.random() for _ in range(5)]
    assert first == second


def test_rng_utilities():
    rng = DeterministicRng(5).child("u")
    assert len(rng.bytes(16)) == 16
    assert rng.choice([1, 2, 3]) in (1, 2, 3)
    assert 0 <= rng.uniform(0, 1) <= 1
    sample = rng.sample(range(10), 3)
    assert len(set(sample)) == 3
    items = [1, 2, 3, 4]
    rng.shuffle(items)
    assert sorted(items) == [1, 2, 3, 4]
    assert rng.expovariate(1.0) > 0
    assert isinstance(rng.gauss(0, 1), float)
    assert "path=" in repr(rng)
