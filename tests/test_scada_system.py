"""End-to-end tests of the Spire SCADA system (Fig. 2 wiring)."""

import pytest

from repro.api import GridSpec, MeasurementDevice, Simulator, build_spire
from repro.scada.events import CommandDirective


@pytest.fixture
def spire():
    sim = Simulator(seed=31)
    config = GridSpec.single_plant(n_distribution_plcs=1, n_generation_plcs=0,
                          n_hmis=1, heartbeat_interval=1.0).spire_config()
    system = build_spire(sim, config)
    sim.run(until=4.0)   # registrations + first polls
    return sim, system


def test_masters_learn_field_state_from_polls(spire):
    sim, system = spire
    for master in system.masters.values():
        assert "plc-physical" in master.plc_state
        assert master.plc_state["plc-physical"]["B57"] is True
        assert "plc-dist-1" in master.plc_state


def test_master_views_are_consistent(spire):
    sim, system = spire
    assert system.master_views_consistent()


def test_hmi_displays_ground_truth(spire):
    sim, system = spire
    hmi = system.hmis[0]
    assert hmi.breaker_state("plc-physical", "B10-1") is True
    assert hmi.indicator("plc-physical", "B57") == "white"


def test_operator_command_roundtrip(spire):
    sim, system = spire
    hmi = system.hmis[0]
    topo = system.physical_plc.topology
    hmi.command_breaker("plc-physical", "B56", False)
    sim.run(until=sim.now + 3.0)
    assert topo.get_breaker("B56") is False
    assert hmi.breaker_state("plc-physical", "B56") is False
    assert hmi.indicator("plc-physical", "B56") == "black"


def test_external_breaker_flip_reaches_hmi(spire):
    """A field-side change (the measurement device's flip) propagates
    through poll -> ordering -> feed -> display."""
    sim, system = spire
    hmi = system.hmis[0]
    topo = system.physical_plc.topology
    topo.set_breaker("B57", False)
    sim.run(until=sim.now + 3.0)
    assert hmi.breaker_state("plc-physical", "B57") is False


def test_single_master_cannot_actuate(spire):
    """A directive from fewer than f+1 replicas must not move a breaker
    — the proxy's agreement rule."""
    sim, system = spire
    proxy = system.proxies[0]
    replica_name = system.prime_config.replica_names[0]
    master = system.masters[replica_name]
    rogue_directive = CommandDirective(
        command_id=("evil", 999), plc="plc-physical", breaker="B10-1",
        close=False, replica=replica_name)
    master._push(proxy.directive_addr, rogue_directive)
    sim.run(until=sim.now + 3.0)
    assert system.physical_plc.topology.get_breaker("B10-1") is True
    assert proxy.commands_applied == 0


def test_single_master_cannot_fake_hmi_view(spire):
    """One compromised master pushing a forged feed cannot change the
    operator's display (f+1 matching rule)."""
    sim, system = spire
    hmi = system.hmis[0]
    replica_name = system.prime_config.replica_names[0]
    master = system.masters[replica_name]
    from repro.scada.events import HmiFeed
    forged = HmiFeed(version=master.version + 50, reset_epoch=0,
                     replica=replica_name,
                     plcs={"plc-physical": {b: False for b in
                                            master.plc_state["plc-physical"]}},
                     currents={})
    before = dict(hmi.view.get("plc-physical", {}))
    master._push((hmi.daemon.name, hmi.feed_port), forged)
    sim.run(until=sim.now + 2.0)
    assert hmi.view["plc-physical"] == before
    assert hmi.breaker_state("plc-physical", "B10-1") is True


def test_historian_records_series(spire):
    sim, system = spire
    topo = system.physical_plc.topology
    topo.set_breaker("B57", False)
    sim.run(until=sim.now + 2.0)
    topo.set_breaker("B57", True)
    sim.run(until=sim.now + 2.0)
    series = system.historian.breaker_series("plc-physical", "B57")
    states = [state for _, state in series]
    assert False in states and True in states


def test_ground_truth_rebuild_after_coordinated_reset(spire):
    """Section III-A: after a total assumption breach the system resets
    and rebuilds the masters' active state by polling field devices —
    while the historian's archive is unrecoverable."""
    sim, system = spire
    topo = system.physical_plc.topology
    topo.set_breaker("B56", False)
    sim.run(until=sim.now + 2.0)
    history_before = len(system.historian.records)
    assert history_before > 0

    lost = system.historian.wipe()
    system.coordinated_reset()
    # Masters are empty right after the reset.
    some_master = next(iter(system.masters.values()))
    assert some_master.plc_state == {}
    sim.run(until=sim.now + 4.0)   # > heartbeat: polls rebuild the view
    for master in system.masters.values():
        assert master.plc_state.get("plc-physical", {}).get("B56") is False
        assert master.plc_state["plc-physical"]["B10-1"] is True
    hmi = system.hmis[0]
    assert hmi.breaker_state("plc-physical", "B56") is False
    # The historian lost its archive for good.
    assert lost == history_before
    old_records = [r for r in system.historian.records if r.time < sim.now - 4.0]
    assert old_records == []


def test_auto_reset_monitor_detects_breach(spire):
    sim, system = spire
    system.enable_auto_reset(check_interval=1.0, strikes=2)
    for replica in system.replicas.values():
        replica.crash()
    sim.run(until=sim.now + 1.0)
    for replica in system.replicas.values():
        replica.recover()   # all stuck RECOVERING: no donors exist
    sim.run(until=sim.now + 8.0)
    assert system.reset_epochs >= 1
    # After the automatic reset, service is restored from ground truth.
    for master in system.masters.values():
        assert "plc-physical" in master.plc_state
    assert system.master_views_consistent()


def test_proactive_recovery_cycle_preserves_operation(spire):
    sim, system = spire
    system.config.proactive_recovery_period = 3.0
    system.config.proactive_recovery_downtime = 0.5
    scheduler = system.start_proactive_recovery()
    topo = system.physical_plc.topology
    hmi = system.hmis[0]
    # Run through two recoveries while flipping a breaker.
    sim.run(until=sim.now + 4.0)
    topo.set_breaker("B57", False)
    sim.run(until=sim.now + 4.0)
    assert scheduler.recoveries_completed >= 2
    assert hmi.breaker_state("plc-physical", "B57") is False
    assert system.master_views_consistent()
    # Every recovered replica runs a fresh diverse variant.
    for target in scheduler.targets:
        if target.recoveries:
            assert target.variants["scada-master"].build_id > 0


def test_proactive_recovery_requires_k_at_least_one():
    sim = Simulator(seed=32)
    from repro.api import GridSpec
    config = GridSpec.single_site("redteam", n_distribution_plcs=0).spire_config()
    system = build_spire(sim, config)
    with pytest.raises(RuntimeError):
        system.start_proactive_recovery()


def test_measurement_device_records_latency(spire):
    sim, system = spire
    hmi = system.hmis[0]
    unit = system.physical_plc
    device = MeasurementDevice(
        sim, unit.topology, "B10-1",
        sensors={"spire": lambda: hmi.breaker_state("plc-physical", "B10-1")},
        period=3.0)
    sim.run(until=sim.now + 10.0)
    latencies = device.latencies("spire")
    assert len(latencies) >= 2
    assert all(0 < lat < 2.0 for lat in latencies)
    summary = device.summary()["spire"]
    assert summary["mean"] > 0


def test_dead_proxy_raises_stale_alarm_on_hmi(spire):
    """When a PLC stops reporting (proxy killed), every master raises
    the same stale alarm at the same version, and the operator sees it."""
    sim, system = spire
    for master in system.masters.values():
        master.stale_after_updates = 8
    victim_proxy = next(p for p in system.proxies
                        if "plc-dist-1" in p.lines)
    victim_proxy.shutdown()
    sim.run(until=sim.now + 15.0)
    hmi = system.hmis[0]
    assert "stale-plc:plc-dist-1" in hmi.alarms
    # The physical PLC keeps reporting: no alarm for it.
    assert "stale-plc:plc-physical" not in hmi.alarms
    assert system.master_views_consistent()
