"""Tests for the perimeter router/firewall appliance."""

import pytest

from repro.net import Host, Lan
from repro.net.router import Router
from repro.api import Simulator


@pytest.fixture
def two_networks():
    sim = Simulator(seed=55)
    lan_a = Lan(sim, "a", "10.1.0.0/24")
    lan_b = Lan(sim, "b", "10.2.0.0/24")
    router = Router(sim, "fw")
    lan_a.connect(router, iface_name="a")
    lan_b.connect(router, iface_name="b")
    host_a = Host(sim, "ha")
    host_b = Host(sim, "hb")
    lan_a.connect(host_a)
    lan_b.connect(host_b)
    host_a.set_default_gateway(host_a.interfaces[0], lan_a.ip_of(router))
    host_b.set_default_gateway(host_b.interfaces[0], lan_b.ip_of(router))
    return sim, lan_a, lan_b, router, host_a, host_b


def test_default_deny_blocks_forwarding(two_networks):
    sim, lan_a, lan_b, router, a, b = two_networks
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    a.udp_send(lan_b.ip_of(b), 9000, "blocked", src_port=1)
    sim.run(until=2.0)
    assert received == []
    assert router.packets_blocked >= 1


def test_allow_rule_forwards_matching_traffic(two_networks):
    sim, lan_a, lan_b, router, a, b = two_networks
    router.allow_forward(dst_ip=lan_b.ip_of(b), proto="udp", dst_port=9000)
    router.allow_forward(src_ip=lan_b.ip_of(b))   # replies
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    b.udp_bind(9001, lambda *args: received.append(args))
    a.udp_send(lan_b.ip_of(b), 9000, "ok", src_port=1)
    a.udp_send(lan_b.ip_of(b), 9001, "blocked-port", src_port=1)
    sim.run(until=2.0)
    assert len(received) == 1
    assert received[0][2] == "ok"


def test_deny_rule_shadows_later_allow(two_networks):
    sim, lan_a, lan_b, router, a, b = two_networks
    router.deny_forward(src_ip=lan_a.ip_of(a))
    router.allow_forward(dst_ip=lan_b.ip_of(b))
    received = []
    b.udp_bind(9000, lambda *args: received.append(args))
    a.udp_send(lan_b.ip_of(b), 9000, "denied-first", src_port=1)
    sim.run(until=2.0)
    assert received == []


def test_tcp_through_router(two_networks):
    sim, lan_a, lan_b, router, a, b = two_networks
    router.allow_forward(dst_ip=lan_b.ip_of(b), proto="tcp", dst_port=8080)
    router.allow_forward(src_ip=lan_b.ip_of(b))
    got = []
    b.tcp_listen(8080, lambda conn: setattr(
        conn, "on_data", lambda c, p: got.append(p)))
    a.tcp_connect(lan_b.ip_of(b), 8080,
                  lambda conn: conn.send("cross-perimeter"))
    sim.run(until=3.0)
    assert got == ["cross-perimeter"]


def test_ttl_prevents_forwarding_loops(two_networks):
    sim, lan_a, lan_b, router, a, b = two_networks
    router.forward_default_allow = True
    from repro.net.packet import IpPacket, UdpDatagram
    packet = IpPacket(src_ip=lan_a.ip_of(a), dst_ip=lan_b.ip_of(b),
                      proto="udp",
                      payload=UdpDatagram(src_port=1, dst_port=2), ttl=1)
    iface = lan_a.interface_of(router)
    forwarded_before = router.packets_forwarded
    router._forward(iface, packet)
    assert router.packets_forwarded == forwarded_before


def test_router_host_itself_reachable(two_networks):
    """The router's own addresses respond (it is also a host)."""
    sim, lan_a, lan_b, router, a, b = two_networks
    received = []
    router.udp_bind(500, lambda *args: received.append(args))
    a.udp_send(lan_a.ip_of(router), 500, "to-router", src_port=1)
    sim.run(until=2.0)
    assert len(received) == 1


def test_no_route_to_unknown_subnet(two_networks):
    sim, lan_a, lan_b, router, a, b = two_networks
    router.forward_default_allow = True
    a.udp_send("10.99.0.1", 9000, "nowhere", src_port=1)
    sim.run(until=2.0)   # silently dropped at the router (no out iface)
    assert router.packets_blocked == 0
