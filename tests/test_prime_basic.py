"""Prime replication: normal-case ordering, consistency, replies."""


def test_single_update_executes_on_all_replicas(cluster):
    client = cluster.add_client("hmi")
    client.submit({"set": ("breaker1", "open")})
    cluster.sim.run(until=2.0)
    for app in cluster.apps.values():
        assert app.store.get("breaker1") == "open"


def test_client_gets_f_plus_1_matching_replies(cluster):
    client = cluster.add_client("hmi")
    seq = client.submit({"set": ("b", 1)})
    cluster.sim.run(until=2.0)
    assert seq in client.confirmed
    assert client.confirmed[seq] == {"ok": True, "key": "b"}
    assert client.confirm_latency[seq] < 1.0


def test_updates_execute_in_same_order_everywhere(cluster):
    client_a = cluster.add_client("proxy-a", port=7501)
    client_b = cluster.add_client("proxy-b", port=7502)
    for i in range(10):
        client_a.submit({"set": (f"a{i}", i)})
        client_b.submit({"set": (f"b{i}", i)})
    cluster.sim.run(until=5.0)
    logs = [tuple(app.oplog) for app in cluster.apps.values()]
    assert all(len(log) == 20 for log in logs)
    assert len(set(logs)) == 1, "replicas diverged in execution order"


def test_each_update_executes_exactly_once(cluster):
    client = cluster.add_client("hmi")
    for i in range(5):
        client.submit({"set": (f"x{i}", i)})
    cluster.sim.run(until=3.0)
    for app in cluster.apps.values():
        keys = [(cid, cseq) for (cid, cseq, _) in app.oplog]
        assert len(keys) == len(set(keys)) == 5


def test_duplicate_submission_not_reexecuted(cluster):
    client = cluster.add_client("hmi")
    client.submit({"set": ("dup", 1)})
    cluster.sim.run(until=2.0)
    # Re-broadcast the identical signed update (client retransmission).
    update = None
    for name, rep in cluster.replicas.items():
        for slot in rep.po_slots.values():
            cu = slot.certified_update()
            if cu is not None and cu.client_id == "hmi":
                update = cu
                break
        if update:
            break
    assert update is not None
    for rep in cluster.replicas.values():
        rep.submit_update(update)
    cluster.sim.run(until=4.0)
    for app in cluster.apps.values():
        count = sum(1 for (cid, cseq, _) in app.oplog
                    if cid == "hmi" and cseq == update.client_seq)
        assert count == 1


def test_throughput_many_updates(cluster):
    client = cluster.add_client("feeder")
    for i in range(50):
        cluster.sim.schedule(i * 0.01, client.submit, {"set": (f"k{i}", i)})
    cluster.sim.run(until=6.0)
    for app in cluster.apps.values():
        assert len(app.oplog) == 50


def test_update_latency_is_bounded_normal_case(cluster):
    """With a correct leader, end-to-end confirm latency stays well
    under the suspect timeout."""
    client = cluster.add_client("hmi")
    for i in range(10):
        cluster.sim.schedule(i * 0.2, client.submit, {"set": (f"t{i}", i)})
    cluster.sim.run(until=5.0)
    assert len(client.confirm_latency) == 10
    assert max(client.confirm_latency.values()) < 0.5


def test_unsigned_update_rejected(cluster):
    from repro.prime import ClientUpdate
    bogus = ClientUpdate(client_id="mallory", client_seq=1,
                         op={"set": ("evil", 1)})
    for rep in cluster.replicas.values():
        rep.submit_update(bogus)
    cluster.sim.run(until=2.0)
    for app in cluster.apps.values():
        assert "evil" not in app.store


def test_update_signed_by_unknown_principal_rejected(cluster):
    from repro.crypto import KeyStore
    from repro.crypto.auth import sign_payload
    from repro.prime import ClientUpdate
    other_ks = KeyStore()
    other_ks.create_signing("mallory")
    ring = other_ks.ring_for(signing_principals=["mallory"])
    update = ClientUpdate(client_id="mallory", client_seq=1,
                          op={"set": ("evil", 1)})
    forged = ClientUpdate(client_id="mallory", client_seq=1,
                          op={"set": ("evil", 1)},
                          signature=sign_payload(ring, "mallory",
                                                 update.signed_view()))
    for rep in cluster.replicas.values():
        rep.submit_update(forged)
    cluster.sim.run(until=2.0)
    for app in cluster.apps.values():
        assert "evil" not in app.store


def test_four_replica_configuration_works(small_cluster):
    """The red-team deployment: f=1, k=0, four replicas."""
    assert small_cluster.config.n == 4
    client = small_cluster.add_client("hmi")
    client.submit({"set": ("breaker", "closed")})
    small_cluster.sim.run(until=2.0)
    for app in small_cluster.apps.values():
        assert app.store.get("breaker") == "closed"
