"""End-to-end trace test: one HMI breaker command must produce a span
for every hop of the paper's reaction path — HMI command → external
Spines delivery → Prime ordering → master execution → proxy actuation →
PLC re-poll → HMI display update — all sharing one trace id."""

import pytest

from repro.api import GridSpec, Simulator, build_spire

EXPECTED_HOPS = [
    "hmi.command", "client.submit", "overlay.deliver", "prime.order",
    "master.execute", "proxy.actuate", "plc.poll", "hmi.update",
]


@pytest.fixture(scope="module")
def traced_system():
    sim = Simulator(seed=7)
    system = build_spire(sim, GridSpec.single_plant(
        n_distribution_plcs=2, n_generation_plcs=0, n_hmis=1).spire_config())
    sim.run(until=6.0)
    hmi = system.hmis[0]
    unit = system.physical_plc
    plc = unit.device.name
    breaker = next(iter(unit.device.coil_map.values()))
    state = hmi.breaker_state(plc, breaker)
    hmi.command_breaker(plc, breaker, not state)
    sim.run(until=10.0)
    return sim, system, hmi


def test_command_produces_every_hop(traced_system):
    sim, _, hmi = traced_system
    trace_id = hmi.last_trace_id()
    assert trace_id is not None
    names = set(sim.tracer.span_names(trace_id))
    for hop in EXPECTED_HOPS:
        assert hop in names, f"missing hop {hop}"


def test_root_span_closes_at_display(traced_system):
    sim, _, hmi = traced_system
    trace_id = hmi.last_trace_id()
    (root,) = sim.tracer.spans(trace_id, name="hmi.command")
    assert root.finished
    assert root.duration > 0
    update_spans = sim.tracer.spans(trace_id, name="hmi.update")
    assert update_spans
    assert root.end == max(s.end for s in update_spans)
    # The reaction latency lands in the HMI's registry histogram too.
    reaction = sim.metrics.get("scada.command_reaction", component=hmi.name)
    assert reaction is not None and reaction.count >= 1


def test_hop_breakdown_is_ordered_and_complete(traced_system):
    sim, _, hmi = traced_system
    breakdown = sim.tracer.hop_breakdown(hmi.last_trace_id())
    hops = [hop["hop"] for hop in breakdown]
    assert hops == EXPECTED_HOPS
    offsets = [hop["offset"] for hop in breakdown]
    assert offsets == sorted(offsets)          # hops appear in causal order
    assert all(hop["duration"] is not None for hop in breakdown)


def test_ordering_spans_cover_quorum(traced_system):
    sim, system, hmi = traced_system
    order_spans = sim.tracer.spans(hmi.last_trace_id(), name="prime.order")
    # Every correct replica that executed the update records a span.
    assert len(order_spans) >= system.prime_config.quorum


def test_subsystem_metrics_populated(traced_system):
    sim, system, hmi = traced_system
    metrics = sim.metrics
    assert metrics.total("sim.events_executed") > 0
    assert metrics.total("net.link.frames_sent") > 0
    assert metrics.total("spines.delivered") > 0
    assert metrics.merged_histogram("spines.delivery_latency").count > 0
    assert metrics.total("prime.updates_executed") > 0
    assert metrics.total("scada.polls") > 0
    assert metrics.total("scada.commands_applied") >= 1
    assert metrics.total("scada.displays") > 0
    for replica in system.replicas.values():
        executed = metrics.counter("prime.updates_executed",
                                   component=replica.name)
        assert executed.value == replica.updates_executed


def test_traces_do_not_perturb_agreement(traced_system):
    _, system, _ = traced_system
    assert system.master_views_consistent()
