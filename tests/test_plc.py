"""Tests for the PLC substrate: topology physics, Modbus, devices."""

import pytest

from repro.net import Host, Lan
from repro.plc import (
    PlcDevice, PowerTopology, distribution_scenario, generation_scenario,
    plant_topology, read_coils, read_input_registers, redteam_topology,
    write_coil, memory_dump, config_upload,
)
from repro.plc.modbus import (
    EXC_ILLEGAL_ADDRESS, EXC_ILLEGAL_FUNCTION, ModbusRequest,
)
from repro.api import Simulator


# ---------------------------------------------------------------------------
# Topology physics
# ---------------------------------------------------------------------------
def test_redteam_topology_shape():
    topo = redteam_topology()
    assert len(topo.breakers) == 7
    assert set(topo.breaker_names()) == {
        "B10-1", "B57", "B56", "B21", "B22", "B23", "B24"}
    assert len(topo.loads) == 4


def test_plant_topology_is_left_subset():
    topo = plant_topology()
    assert set(topo.breaker_names()) == {"B10-1", "B57", "B56"}


def test_all_closed_energizes_all_buildings():
    topo = redteam_topology()
    assert all(topo.energized_loads().values())


def test_opening_main_breaker_kills_everything():
    topo = redteam_topology()
    topo.set_breaker("B10-1", False)
    assert not any(topo.energized_loads().values())


def test_opening_feeder_kills_only_its_buildings():
    topo = redteam_topology()
    topo.set_breaker("B57", False)
    loads = topo.energized_loads()
    assert not loads["building-A"]
    assert not loads["building-B"]
    assert loads["building-C"]
    assert loads["building-D"]


def test_building_breaker_isolates_single_building():
    topo = redteam_topology()
    topo.set_breaker("B23", False)
    loads = topo.energized_loads()
    assert not loads["building-C"]
    assert sum(loads.values()) == 3


def test_flip_count_tracks_changes_only():
    topo = redteam_topology()
    topo.set_breaker("B57", False)
    topo.set_breaker("B57", False)   # no-op
    topo.set_breaker("B57", True)
    assert topo.flip_count == 2


def test_scenarios_sizes():
    assert len(distribution_scenario()) == 10
    assert len(generation_scenario()) == 6
    for topo in distribution_scenario(3):
        assert len(topo.breakers) == 3
        assert len(topo.loads) == 2


def test_unknown_bus_and_duplicate_breaker_rejected():
    topo = PowerTopology("t")
    topo.add_bus("a", source=True)
    topo.add_bus("b")
    topo.add_breaker("x", "a", "b")
    with pytest.raises(ValueError):
        topo.add_breaker("x", "a", "b")
    with pytest.raises(ValueError):
        topo.add_breaker("y", "a", "nope")
    with pytest.raises(ValueError):
        topo.add_load("l", "nope")


# ---------------------------------------------------------------------------
# PLC device over the network
# ---------------------------------------------------------------------------
@pytest.fixture
def plc_setup():
    sim = Simulator(seed=2)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    plc_host = Host(sim, "plc-host")
    client_host = Host(sim, "client")
    lan.connect(plc_host)
    lan.connect(client_host)
    topo = redteam_topology()
    device = PlcDevice(sim, "plc1", plc_host, topo, physical=True)
    return sim, lan, plc_host, client_host, topo, device


def modbus_roundtrip(sim, client_host, plc_ip, request):
    responses = []

    def established(conn):
        conn.send(request)

    client_host.tcp_connect(plc_ip, 502, established,
                            on_data=lambda c, p: responses.append(p))
    sim.run(until=sim.now + 2.0)
    return responses


def test_read_coils_over_tcp(plc_setup):
    sim, lan, plc_host, client, topo, device = plc_setup
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host),
                                 read_coils(1, 0, 7))
    assert len(responses) == 1
    assert responses[0].ok
    assert responses[0].values == [1] * 7


def test_write_coil_actuates_breaker(plc_setup):
    sim, lan, plc_host, client, topo, device = plc_setup
    address = next(a for a, b in device.coil_map.items() if b == "B57")
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host),
                                 write_coil(2, address, False))
    assert responses[0].ok
    assert topo.get_breaker("B57") is False
    assert device.writes_served == 1


def test_input_registers_reflect_current_flow(plc_setup):
    sim, lan, plc_host, client, topo, device = plc_setup
    topo.set_breaker("B10-1", False)   # no source -> no flow anywhere
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host),
                                 read_input_registers(3, 0, 7))
    assert responses[0].ok
    assert all(v == 0 for v in responses[0].values)
    topo.set_breaker("B10-1", True)
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host),
                                 read_input_registers(4, 0, 7))
    assert any(v > 0 for v in responses[0].values)


def test_illegal_address_returns_exception(plc_setup):
    sim, lan, plc_host, client, topo, device = plc_setup
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host),
                                 read_coils(5, 90, 3))
    assert not responses[0].ok
    assert responses[0].exception == EXC_ILLEGAL_ADDRESS


def test_unknown_function_returns_exception(plc_setup):
    sim, lan, plc_host, client, topo, device = plc_setup
    bogus = ModbusRequest(transaction_id=6, unit_id=1, function=0x77)
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host), bogus)
    assert responses[0].exception == EXC_ILLEGAL_FUNCTION


def test_memory_dump_leaks_config_unauthenticated(plc_setup):
    """The vendor maintenance interface has no authentication — the
    red team's first successful attack on the commercial system."""
    sim, lan, plc_host, client, topo, device = plc_setup
    responses = modbus_roundtrip(sim, client, lan.ip_of(plc_host),
                                 memory_dump(7))
    assert responses[0].ok
    assert responses[0].payload["logic"] == "interlock-v1"
    assert "coil_map" in responses[0].payload


def test_config_upload_compromises_plc(plc_setup):
    sim, lan, plc_host, client, topo, device = plc_setup
    assert not device.compromised_config
    responses = modbus_roundtrip(
        sim, client, lan.ip_of(plc_host),
        config_upload(8, {"logic": "evil", "backdoor": True}))
    assert responses[0].ok
    assert device.compromised_config
    assert device.config["logic"] == "evil"
