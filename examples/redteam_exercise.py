"""The red-team exercise (Section IV), end to end.

Builds the Fig. 3 testbed — enterprise network, perimeter firewall,
commercial SCADA operations network, Spire operations network, MANA 1-3
— trains the IDS on baseline traffic, then runs the Sandia campaign in
the order the paper reports it and prints each stage's outcome plus the
situational-awareness board.

Run:  python examples/redteam_exercise.py
"""

from repro.api import Simulator, build_redteam_testbed
from repro.mana import SituationalAwarenessBoard
from repro.redteam import Attacker
from repro.redteam.scenarios import (
    run_commercial_enterprise_pivot, run_commercial_ops_mitm,
    run_spire_enterprise_probe, run_spire_excursion, run_spire_ops_attacks,
)


def main() -> None:
    sim = Simulator(seed=42)
    print("setting up the PNNL testbed (Fig. 3) ...")
    testbed = build_redteam_testbed(sim)
    testbed.start_cyclers(interval=2.0)

    print("collecting baseline traffic and training MANA 1-3 ...")
    sim.run(until=20.0)
    trained = testbed.train_mana(2.0, 20.0)
    for name, windows in trained.items():
        print(f"  {name}: trained on {windows} windows")
    for instance in testbed.mana.values():
        instance.start_live()

    # ----- the campaign ---------------------------------------------
    ent_box = testbed.place_attacker("enterprise", "rt-ent")
    attacker = Attacker(sim, "sandia", ent_box)

    print("\n--- day 1: the commercial system, from the enterprise ---")
    print(run_commercial_enterprise_pivot(testbed, attacker).render())

    print("\n--- day 1: the commercial system, on operations ---")
    ops_box = testbed.place_attacker("ops-commercial", "rt-ops")
    attacker.footholds[ops_box.name] = "root"
    print(run_commercial_ops_mitm(testbed, attacker, ops_box).render())

    print("\n--- day 2: Spire, from the enterprise ---")
    print(run_spire_enterprise_probe(testbed, attacker).render())

    print("\n--- day 2: Spire, on operations ---")
    spire_box = testbed.place_attacker("ops-spire", "rt-spire")
    attacker.footholds[spire_box.name] = "root"
    print(run_spire_ops_attacks(testbed, attacker, spire_box).render())

    print("\n--- day 3: the excursion ---")
    print(run_spire_excursion(testbed, attacker).render())

    # ----- what the defenders saw ------------------------------------
    board = SituationalAwarenessBoard()
    for instance in testbed.mana.values():
        board.observe(instance.correlator, now=sim.now)
        board.set_quiet(instance.capture.network)
    print("\n" + board.render())
    for instance in testbed.mana.values():
        for incident in instance.correlator.incidents:
            print(f"  {instance.name}: {incident.describe()}")

    print("\nfinal state:")
    print(f"  commercial PLC running attacker config: "
          f"{testbed.commercial.plc.compromised_config}")
    print(f"  Spire PLC intact: "
          f"{not testbed.spire.physical_plc.device.compromised_config}")
    print(f"  Spire master views consistent: "
          f"{testbed.spire.master_views_consistent()}")


if __name__ == "__main__":
    main()
