"""Operations-based intrusion detection with MANA (Section III-C).

Stands up a SCADA operations network with a passive SPAN-port capture,
trains the per-network anomaly models on baseline traffic, switches to
near-real-time monitoring, and then launches a sequence of attacks —
showing what the situational-awareness board tells the operator while
the attacks are invisible at the SCADA level.

Run:  python examples/mana_monitoring.py
"""

from repro.api import Simulator, build_redteam_testbed
from repro.mana import SituationalAwarenessBoard
from repro.redteam import ArpMitm, Attacker


def main() -> None:
    sim = Simulator(seed=5)
    testbed = build_redteam_testbed(sim)
    testbed.start_cyclers(interval=2.0)
    board = SituationalAwarenessBoard()

    print("collecting the baseline capture (the deployments used 24h/12h; "
          "this run scales it down) ...")
    sim.run(until=25.0)
    for name, windows in testbed.train_mana(2.0, 25.0).items():
        print(f"  {name} trained: {windows} windows, "
              f"{len(testbed.mana[name].capture)} frames captured")
    for instance in testbed.mana.values():
        instance.start_live()
        board.set_quiet(instance.capture.network)

    def show_board(label):
        for instance in testbed.mana.values():
            board.observe(instance.correlator, now=sim.now)
        print(f"\n[{sim.now:6.1f}s] {label}")
        print(board.render())

    show_board("quiet period — everything normal")
    sim.run(until=35.0)

    ops_box = testbed.place_attacker("ops-commercial", "rt-ops")
    attacker = Attacker(sim, "redteam", ops_box)
    lan = testbed.commercial.lan

    print("\nlaunching: port scan of the SCADA server ...")
    attacker.port_scan(ops_box, lan.ip_of(testbed.commercial.primary.host))
    sim.run(until=sim.now + 8.0)
    show_board("after the port scan")

    print("\nlaunching: ARP-poisoning MITM against the HMI ...")
    mitm = ArpMitm(sim, "mitm", ops_box, lan,
                   lan.ip_of(testbed.commercial.primary.host),
                   lan.ip_of(testbed.commercial.hmi_host),
                   policy="forward", poison_interval=0.05)
    sim.run(until=sim.now + 10.0)
    mitm.stop_attack()
    show_board("during the MITM")

    print("\nlaunching: DoS burst at the HMI ...")
    attacker.dos_flood(ops_box, lan.ip_of(testbed.commercial.hmi_host),
                       5000, duration=4.0, rate_pps=1500)
    sim.run(until=sim.now + 8.0)
    show_board("after the DoS burst")

    print("\nalert detail:")
    for instance in testbed.mana.values():
        for alert in instance.alerts:
            print("  " + alert.describe())
    print("\nincidents (what the operator reacts to):")
    for instance in testbed.mana.values():
        for incident in instance.correlator.incidents:
            print(f"  {instance.name}: {incident.describe()}")


if __name__ == "__main__":
    main()
