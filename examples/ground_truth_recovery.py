"""Recovering from an assumption breach (Section III-A).

The paper's distinctive cyber-physical observation: because the RTUs
and PLCs *are* the ground truth, a SCADA master can rebuild its active
state by re-polling the field devices — something no generic BFT
database can do.  This example destroys every replica's state (beyond
anything BFT tolerates), watches the automatic reset fire, and shows
the system view coming back from the field — while the historian's
archive, which has no physical ground truth, stays lost.

Run:  python examples/ground_truth_recovery.py
"""

from repro.api import GridSpec, Simulator, build_spire
from repro.scada import render_hmi


def main() -> None:
    sim = Simulator(seed=13)
    system = build_spire(sim, GridSpec.single_plant(
        n_distribution_plcs=1, n_generation_plcs=0, n_hmis=1,
        heartbeat_interval=1.5).spire_config())
    system.enable_auto_reset(check_interval=1.0, strikes=2)
    sim.run(until=5.0)

    topo = system.physical_plc.topology
    hmi = system.hmis[0]
    print("setting a distinctive field configuration (B56 open) ...")
    topo.set_breaker("B56", False)
    sim.run(until=8.0)
    print(render_hmi(hmi, topo, "plc-physical"))
    print(f"\nhistorian records so far: {len(system.historian.records)}")

    print("\n=== ASSUMPTION BREACH ===")
    print("crashing all six replicas with total state loss, "
          "wiping the historian ...")
    lost = system.historian.wipe()
    for replica in system.replicas.values():
        replica.crash()
    sim.run(until=9.0)
    for replica in system.replicas.values():
        replica.recover()   # no donors exist: state transfer cannot finish
    print("replicas are stuck recovering (no f+1 consistent donors):")
    sim.run(until=9.5)   # before the breach monitor's strikes accumulate
    for name, replica in system.replicas.items():
        print(f"  {name}: {replica.state}")

    print("\nwaiting for the automatic reset + field-device rebuild ...")
    sim.run(until=24.0)
    print(f"automatic resets performed: {system.reset_epochs}")
    master = next(iter(system.masters.values()))
    print(f"master rebuilt {len(master.plc_state)} PLC views from polls")
    print(render_hmi(hmi, topo, "plc-physical"))
    print(f"\nB56 still correctly shown open: "
          f"{hmi.breaker_state('plc-physical', 'B56') is False}")
    print(f"views consistent: {system.master_views_consistent()}")
    print(f"\nhistorian: {lost} records were destroyed and "
          f"{len(system.historian.records)} exist now — the archive did "
          "NOT come back (history has no ground-truth source).")
    print("\n'This interesting feature opens up the possibility of "
          "recovering from temporary assumption breaches in a way that "
          "is not possible for generic BFT replication.'")


if __name__ == "__main__":
    main()
