"""Quickstart: build an intrusion-tolerant SCADA system and operate it.

Builds a six-replica Spire deployment (the power plant configuration),
lets the proxies poll their PLCs, reads the operator's HMI, issues a
supervisory command, and — because this is the point of the system —
compromises a replica mid-run and shows that nothing user-visible
changes.

Run:  python examples/quickstart.py
"""

from repro.api import GridSpec, Simulator, build_spire


def main() -> None:
    sim = Simulator(seed=1)
    config = GridSpec.single_plant(
        n_distribution_plcs=2, n_generation_plcs=1,
        n_hmis=1).spire_config()
    system = build_spire(sim, config)
    print(f"built {config.name}: {system.prime_config.n} replicas "
          f"(f={config.f}, k={config.k}), {len(system.plcs)} PLCs, "
          f"{len(system.hmis)} HMI(s)")

    # Let registrations and the first polls flow through Prime.
    sim.run(until=5.0)
    hmi = system.hmis[0]
    print("\noperator view after startup:")
    for plc, breakers in sorted(hmi.view.items()):
        closed = sum(1 for state in breakers.values() if state)
        print(f"  {plc:<16} {closed}/{len(breakers)} breakers closed")

    # Supervisory command: open breaker B57 at the plant.
    print("\noperator opens B57 ...")
    hmi.command_breaker("plc-physical", "B57", False)
    sim.run(until=sim.now + 2.0)
    topology = system.physical_plc.topology
    print(f"  field breaker B57 closed: {topology.get_breaker('B57')}")
    print(f"  HMI indicator (the black/white box): "
          f"{hmi.indicator('plc-physical', 'B57')}")

    # The HMI one-line diagram (Fig. 4 style).
    from repro.scada import render_hmi
    print()
    print(render_hmi(hmi, topology, "plc-physical"))

    # Compromise a replica: it goes fully silent (crash-byzantine).
    victim = system.replicas[system.prime_config.replica_names[0]]
    victim.byzantine = "crash"
    print(f"\ncompromising {victim.name} (goes silent) ...")
    hmi.command_breaker("plc-physical", "B57", True)
    sim.run(until=sim.now + 3.0)
    print(f"  command still executed: field B57 closed = "
          f"{topology.get_breaker('B57')}")
    print(f"  HMI still live: {hmi.indicator('plc-physical', 'B57')}")
    print(f"  master views consistent: {system.master_views_consistent()}")

    print("\nreplica status:")
    for name, replica in system.replicas.items():
        s = replica.summary()
        marker = "  <- compromised" if replica.byzantine else ""
        print(f"  {name}: state={s['state']} view={s['view']} "
              f"executed={s['updates_executed']}{marker}")


if __name__ == "__main__":
    main()
