"""The power plant test deployment (Section V).

Six diverse replicas with proactive recovery manage the plant subset
(B10-1, B57, B56) plus the emulated distribution and generation
scenarios, displayed on HMIs in three locations.  On "the last day",
the plant engineers' measurement device flips a breaker periodically
and times how fast each system's HMI reacts — Spire against a
commercial system watching the same physical breaker.

Run:  python examples/power_plant.py
"""

from repro.api import (
    GridSpec, MeasurementDevice, Simulator, build_spire,
)
from repro.net import Host, Lan
from repro.plc import PlcDevice
from repro.redteam.commercial import CommercialHmi, CommercialScadaServer


def main() -> None:
    sim = Simulator(seed=7)
    print("deploying Spire in the plant (6 replicas, 17 PLCs, 3 HMIs) ...")
    system = build_spire(sim, GridSpec.single_plant(
        proactive_recovery_period=15.0, poll_interval=0.25).spire_config())
    sim.run(until=5.0)
    system.start_proactive_recovery()

    # The plant's existing commercial SCADA watches the same breakers.
    topology = system.physical_plc.topology
    lan = Lan(sim, "plant-commercial", "10.30.0.0/24")
    plc_host, server_host, hmi_host = (Host(sim, n) for n in
                                       ("c-plc", "c-server", "c-hmi"))
    for host in (plc_host, server_host, hmi_host):
        lan.connect(host)
    PlcDevice(sim, "c-plc", plc_host, topology, physical=True)
    server = CommercialScadaServer(sim, "c-server", server_host,
                                   lan.ip_of(plc_host),
                                   lan.ip_of(hmi_host), primary=True)
    server.set_coil_names(topology.breaker_names())
    commercial_hmi = CommercialHmi(sim, "c-hmi", hmi_host,
                                   lan.ip_of(server_host))

    print("running the deployment (scaled stand-in for the six days) ...")
    sim.run(until=40.0)
    print("  proactive recoveries so far:",
          system.recovery.recoveries_completed)
    print("  all three HMIs agree:",
          len({str(sorted(h.view.get('plc-physical', {}).items()))
               for h in system.hmis}) == 1)

    print("\nlast day: the measurement device (breaker flip -> HMI "
          "sensors) ...")
    spire_hmi = system.hmis[0]
    device = MeasurementDevice(
        sim, topology, "B57",
        sensors={
            "spire": lambda: spire_hmi.breaker_state("plc-physical", "B57"),
            "commercial": lambda: commercial_hmi.breaker_state("B57"),
        },
        period=4.0)
    sim.run(until=sim.now + 45.0)

    print(f"\n{'system':<12} {'samples':>7} {'mean':>9} {'p50':>9} "
          f"{'max':>9}")
    summary = device.summary()
    for name in ("spire", "commercial"):
        stats = summary[name]
        print(f"{name:<12} {stats['samples']:>7} "
              f"{stats['mean']*1000:>7.0f}ms {stats['p50']*1000:>7.0f}ms "
              f"{stats['max']*1000:>7.0f}ms")
    speedup = summary["commercial"]["mean"] / summary["spire"]["mean"]
    print(f"\nSpire reflects breaker changes {speedup:.1f}x faster than "
          "the commercial system, matching the plant test's outcome.")


if __name__ == "__main__":
    main()
